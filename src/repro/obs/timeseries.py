"""Continuous metric streams sampled on the virtual clock.

End-of-run snapshots (``Machine.metrics()``) answer "how did the run
go"; they cannot answer "when did behaviour change" — the question
behind fig6's no-policy-wins-everywhere result, behind warm-up and
flash-crowd analysis at fleet scale, and behind any adaptive policy
that needs a reward signal over time.  This module is the telemetry
plane that answers it:

* :class:`TimeseriesSampler` — a deterministic sampler driven by a
  daemon :class:`~repro.sim.engine.SimThread` that wakes at fixed
  virtual-time boundaries (``sample_interval_us``) and closes one
  *frame* per interval: counter deltas plus instantaneous gauges for
  the machine and every cgroup.  Frames are half-open windows
  ``[t, t + interval)``; the final partial window is closed by
  :meth:`~TimeseriesSampler.finalize`.
* :class:`MetricFrameBuffer` — the compact columnar store behind each
  sampled machine (one list per column, one row per (frame, scope)),
  with JSONL and ``.npz`` exports.
* :class:`LookupTimeline` — the event-driven hit-ratio-over-time
  collector (absorbing the original
  :class:`repro.obs.collectors.HitRatioTimeline`, now a deprecated
  shim over this class).

Determinism contract (asserted in ``tests/test_timeseries.py`` and by
``python -m repro.obs.guard --timeseries``):

1. **Non-perturbation** — attaching the sampler never changes any
   virtual-time result.  The sampler thread uses a reserved negative
   ``tid`` (:data:`SAMPLER_TID`) so workload tids from the engine's
   allocator are unshifted, only waits (never charges CPU, never
   touches the cache or RNG), and reads counters that already exist.
   Its only scheduler effect is ending a burst at a frame boundary,
   which the burst invariant proves schedule-neutral.
2. **Exact totals** — frames are telescoping counter diffs from an
   all-zero baseline, so summing any integer column over a machine's
   frames reproduces the end-of-run ``Machine.metrics()`` value
   exactly (float columns like ``hook_cpu_us`` agree to accumulation
   error).  No double counting: each counter update lands in exactly
   one frame — the one open when the step that performed it was
   scheduled.
3. **Reproducibility** — frames are byte-identical serial vs
   ``--jobs`` and cold vs snapshot-restored (the sampler attaches via
   the cell observer in both paths, against identical zero baselines).

Latency quantiles come from the span plane: the sampler subscribes to
``span:close`` (proven purely observational by ``guard --spans``) and
folds each frame's device-wait/device-service samples into per-frame
log2 histograms, reporting approximate p50/p99 as bucket upper bounds.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.kernel.stats import CacheStats
from repro.obs.collectors import Collector, Histogram, WindowedSeries
from repro.obs.trace import TraceEvent

#: Default frame width: 10 virtual milliseconds.
DEFAULT_SAMPLE_INTERVAL_US = 10_000.0

#: Reserved tid for sampler threads.  The engine hands workload
#: threads tids from ``itertools.count(1000)``; taking one of those for
#: the sampler would shift every later tid by one and perturb
#: tid-keyed policies, so the sampler pins an id no allocator emits.
SAMPLER_TID = -1

FRAME_FORMAT = "repro.obs.timeseries"
FRAME_VERSION = 1

#: Per-scope counter deltas: the full CacheStats field set (machine
#: row: page-cache-wide; cgroup rows: that cgroup's counters).  Field
#: order is the dataclass definition order — stable and explicit.
STAT_COLUMNS = tuple(CacheStats.__dataclass_fields__)

#: Per-scope block-I/O page deltas (machine row: device totals; cgroup
#: rows: pages issued by that cgroup's threads).
IO_COLUMNS = ("io_read_pages", "io_write_pages")

#: Per-scope span-plane deltas (requests closed during the frame).
SPAN_COLUMNS = ("span_count", "span_dur_us", "reclaim_stall_us")

#: Instantaneous gauges read at the frame's closing boundary.  On the
#: machine row ``charged_pages`` is total resident pages (the sum over
#: cgroups — charging is flat, see MemCgroup.charge) and ``health`` the
#: minimum attached-policy health.
GAUGE_COLUMNS = ("charged_pages", "health")

#: Machine-row-only columns (zero on cgroup rows): device request
#: deltas, the queue-depth gauge, fault-plane visibility and per-frame
#: device latency quantiles from span components.
MACHINE_COLUMNS = ("disk_reads", "disk_writes", "disk_busy_us",
                   "disk_errors", "queue_depth", "active_faults",
                   "faults_fired",
                   "device_wait_p50_us", "device_wait_p99_us",
                   "device_service_p50_us", "device_service_p99_us")

#: Columns whose per-frame values are deltas (summable over frames);
#: everything else is identity or a gauge.
DELTA_COLUMNS = (STAT_COLUMNS + IO_COLUMNS + SPAN_COLUMNS
                 + ("disk_reads", "disk_writes", "disk_busy_us",
                    "disk_errors", "faults_fired"))

#: Full column order of one frame row.
FRAME_COLUMNS = (("t_us", "dur_us", "scope") + STAT_COLUMNS + IO_COLUMNS
                 + SPAN_COLUMNS + GAUGE_COLUMNS + MACHINE_COLUMNS)


def _hist_quantile(hist: Histogram, q: float) -> float:
    """Approximate quantile of a log2 histogram: the upper bound of the
    bucket where the cumulative count crosses ``q`` (deterministic, and
    an upper bound like the histogram itself)."""
    if hist.count == 0:
        return 0.0
    target = q * hist.count
    seen = 0
    for index in sorted(hist.buckets):
        seen += hist.buckets[index]
        if seen >= target:
            _lo, hi = Histogram.bucket_bounds(index)
            return float(hi)
    _lo, hi = Histogram.bucket_bounds(max(hist.buckets))
    return float(hi)


class MetricFrameBuffer:
    """Columnar frame store for one sampled machine.

    One list per column of :data:`FRAME_COLUMNS`; a frame appends one
    row per scope (the machine row first, then every cgroup in
    creation order).  Lists of primitives keep the buffer compact and
    make the JSONL/npz exports trivial.
    """

    __slots__ = ("columns", "n_frames")

    def __init__(self) -> None:
        self.columns: dict[str, list] = {c: [] for c in FRAME_COLUMNS}
        self.n_frames = 0

    def __len__(self) -> int:
        return len(self.columns["t_us"])

    def append_row(self, values: dict) -> None:
        for column in FRAME_COLUMNS:
            self.columns[column].append(values.get(column, 0))

    def rows(self) -> list[dict]:
        """The buffer as row dicts (the JSONL row shape, no cell tag)."""
        cols = self.columns
        return [{c: cols[c][i] for c in FRAME_COLUMNS}
                for i in range(len(self))]

    def to_doc(self) -> dict:
        return {"n_frames": self.n_frames, "columns": dict(self.columns)}


class _MachineStream:
    """Sampler state for one machine: baselines, span accumulators and
    the frame buffer."""

    def __init__(self, machine, interval_us: float) -> None:
        self.machine = machine
        self.interval_us = interval_us
        self.buffer = MetricFrameBuffer()
        self.last_boundary = 0.0
        self.finalized = False
        # Telescoping baselines.  At attach every counter is zero in
        # both the cold and the snapshot-restored build path (the bulk
        # load never enters the engine), which is what makes frame
        # sums equal the end-of-run metrics exactly; snapshotting the
        # actual state instead of assuming zeros keeps the diffs
        # correct even for hypothetical nonzero starts.
        self._prev_mstats = machine.page_cache.stats.snapshot()
        d = machine.disk.stats
        self._prev_disk = {"reads": d.reads, "writes": d.writes,
                           "read_pages": d.read_pages,
                           "write_pages": d.write_pages,
                           "busy_us": d.busy_us, "errors": d.errors}
        self._prev_cgroup: dict[str, dict] = {}
        self._prev_io: dict[str, tuple] = {}
        self._prev_fired = 0
        # Per-frame span accumulators, reset at each close.
        self._span_scope: dict[str, list] = {}
        self._wait_hist = Histogram()
        self._service_hist = Histogram()
        self._span_tp = machine.trace.tracepoint("span:close")
        self._span_tp.subscribe(self._on_span)
        machine.engine.spawn(
            "obs:timeseries", self._step, cgroup=machine.root_cgroup,
            tid=SAMPLER_TID, start_us=interval_us, daemon=True)

    # -- engine-side ---------------------------------------------------
    def _step(self, thread) -> bool:
        self.close_frame(thread.clock_us)
        thread.wait_until(thread.clock_us + self.interval_us)
        return True

    def _on_span(self, event: TraceEvent) -> None:
        data = event.data
        slot = self._span_scope.get(event.cgroup)
        if slot is None:
            slot = self._span_scope[event.cgroup] = [0, 0.0, 0.0]
        slot[0] += 1
        slot[1] += data.get("dur_us", 0.0)
        slot[2] += data.get("reclaim_stall", 0.0)
        wait = data.get("device_wait")
        if wait is not None:
            self._wait_hist.record(wait)
        service = data.get("device_service")
        if service is not None:
            self._service_hist.record(service)

    # -- frame assembly ------------------------------------------------
    def close_frame(self, now_us: float) -> None:
        if now_us <= self.last_boundary:
            return
        machine = self.machine
        t_us, dur_us = self.last_boundary, now_us - self.last_boundary
        span_scope = self._span_scope
        per_cgroup_io = machine.disk.per_cgroup

        # Cgroup rows are assembled first so the machine row can carry
        # the resident-pages sum and minimum health; appended after it.
        cgroup_rows = []
        resident = 0
        min_health = 1.0
        for memcg in machine.cgroups():
            name = memcg.name
            stats = memcg.stats.snapshot()
            prev = self._prev_cgroup.get(name)
            io = per_cgroup_io.get(memcg.id)
            io_r = io.read_pages if io is not None else 0
            io_w = io.write_pages if io is not None else 0
            prev_io = self._prev_io.get(name, (0, 0))
            policy = memcg.ext_policy
            health = (policy.health_score()
                      if policy is not None
                      and hasattr(policy, "health_score") else 1.0)
            row = {"t_us": t_us, "dur_us": dur_us, "scope": name,
                   "io_read_pages": io_r - prev_io[0],
                   "io_write_pages": io_w - prev_io[1],
                   "charged_pages": memcg.charged_pages,
                   "health": health}
            if prev is None:
                row.update(stats)
            else:
                for f in STAT_COLUMNS:
                    row[f] = stats[f] - prev[f]
            spans = span_scope.get(name)
            if spans is not None:
                row["span_count"] = spans[0]
                row["span_dur_us"] = spans[1]
                row["reclaim_stall_us"] = spans[2]
            cgroup_rows.append(row)
            resident += memcg.charged_pages
            if health < min_health:
                min_health = health
            self._prev_cgroup[name] = stats
            self._prev_io[name] = (io_r, io_w)

        mstats = machine.page_cache.stats.snapshot()
        prev_m = self._prev_mstats
        disk = machine.disk.stats
        prev_d = self._prev_disk
        faults = machine.faults
        fired = (sum(faults.fired.values()) if faults is not None else 0)
        span_total = [0, 0.0, 0.0]
        for slot in span_scope.values():
            span_total[0] += slot[0]
            span_total[1] += slot[1]
            span_total[2] += slot[2]
        machine_row = {
            "t_us": t_us, "dur_us": dur_us, "scope": "machine",
            "io_read_pages": disk.read_pages - prev_d["read_pages"],
            "io_write_pages": disk.write_pages - prev_d["write_pages"],
            "span_count": span_total[0],
            "span_dur_us": span_total[1],
            "reclaim_stall_us": span_total[2],
            "charged_pages": resident,
            "health": min_health,
            "disk_reads": disk.reads - prev_d["reads"],
            "disk_writes": disk.writes - prev_d["writes"],
            "disk_busy_us": disk.busy_us - prev_d["busy_us"],
            "disk_errors": disk.errors - prev_d["errors"],
            "queue_depth": machine.disk.busy_channels(now_us),
            "active_faults": self._active_faults(t_us, now_us),
            "faults_fired": fired - self._prev_fired,
            "device_wait_p50_us": _hist_quantile(self._wait_hist, 0.50),
            "device_wait_p99_us": _hist_quantile(self._wait_hist, 0.99),
            "device_service_p50_us":
                _hist_quantile(self._service_hist, 0.50),
            "device_service_p99_us":
                _hist_quantile(self._service_hist, 0.99),
        }
        for f in STAT_COLUMNS:
            machine_row[f] = mstats[f] - prev_m[f]

        self.buffer.append_row(machine_row)
        for row in cgroup_rows:
            self.buffer.append_row(row)
        self.buffer.n_frames += 1

        self._prev_mstats = mstats
        self._prev_disk = {"reads": disk.reads, "writes": disk.writes,
                           "read_pages": disk.read_pages,
                           "write_pages": disk.write_pages,
                           "busy_us": disk.busy_us,
                           "errors": disk.errors}
        self._prev_fired = fired
        self._span_scope = {}
        self._wait_hist = Histogram()
        self._service_hist = Histogram()
        self.last_boundary = now_us

    def _active_faults(self, start_us: float, end_us: float) -> int:
        """Fault windows from the armed plan overlapping the frame
        ``[start_us, end_us)`` — the recorded fault timeline the
        analyzer cross-correlates degradation episodes against."""
        faults = self.machine.faults
        if faults is None:
            return 0
        plan = faults.plan
        n = 0
        for f in plan.device:
            if f.start_us < end_us and f.end_us > start_us:
                n += 1
        for f in plan.policy:
            if f.start_us < end_us and f.end_us > start_us:
                n += 1
        for f in plan.memory:
            if start_us <= f.at_us < end_us:
                n += 1
        return n

    def finalize(self) -> None:
        if self.finalized:
            return
        self.close_frame(self.machine.engine.now_us)
        self._span_tp.unsubscribe(self._on_span)
        self.finalized = True


class TimeseriesSampler:
    """Deterministic fixed-interval metric sampler for one or more
    machines (one daemon thread and one frame buffer per machine).

    Usage (any machine, directly)::

        sampler = TimeseriesSampler(interval_us=10_000.0)
        sampler.attach(machine)
        ...  # run the workload
        sampler.finalize()
        sampler.write_jsonl("frames.jsonl")

    or let the parallel runner / :func:`repro.api.run` drive it via
    ``--timeseries`` / ``timeseries=True``.  Refuses replay-mode
    machines: the trimmed replay engine rejects spawned threads, and a
    cadence needs the engine clock (``mode="full"`` keeps telemetry).
    """

    def __init__(self,
                 interval_us: float = DEFAULT_SAMPLE_INTERVAL_US) -> None:
        if interval_us <= 0:
            raise ValueError(
                f"sample interval must be positive: {interval_us}")
        self.interval_us = float(interval_us)
        self.streams: list[_MachineStream] = []

    def attach(self, machine) -> "TimeseriesSampler":
        if getattr(machine, "replay_mode", False):
            raise ValueError(
                "timeseries sampling needs the full engine: replay-mode "
                "machines refuse spawned threads, so the virtual-time "
                "sampler cannot tick (use mode='full' or 'auto')")
        self.streams.append(_MachineStream(machine, self.interval_us))
        return self

    def finalize(self) -> None:
        """Close each machine's tail partial frame and detach from the
        span tracepoint.  Idempotent."""
        for stream in self.streams:
            stream.finalize()

    @property
    def frames_recorded(self) -> int:
        return sum(s.buffer.n_frames for s in self.streams)

    def to_doc(self) -> dict:
        """JSON-safe document: meta plus one columnar buffer per
        machine (in attach order)."""
        return {
            "format": FRAME_FORMAT,
            "version": FRAME_VERSION,
            "interval_us": self.interval_us,
            "machines": [s.buffer.to_doc() for s in self.streams],
        }

    def write_jsonl(self, path_or_file, cell: str = "") -> int:
        """Export as frames JSONL (see :func:`write_frames_jsonl`);
        returns the number of rows written."""
        return write_frames_jsonl({cell: self.to_doc()}, path_or_file)

    def write_npz(self, path: str) -> None:
        """Export as a compressed ``.npz`` (requires numpy)."""
        write_frames_npz({"": self.to_doc()}, path)


# ----------------------------------------------------------------------
# artifact I/O
# ----------------------------------------------------------------------
def _doc_rows(docs: dict):
    """Yield ``(cell, machine_index, row_dict)`` over a ``{cell: doc}``
    mapping, cells in sorted order — the canonical row order every
    export uses, making artifacts byte-identical serial vs ``--jobs``."""
    for cell in sorted(docs):
        doc = docs[cell]
        for mi, machine_doc in enumerate(doc.get("machines", ())):
            cols = machine_doc["columns"]
            for i in range(len(cols["t_us"])):
                yield cell, mi, {c: cols[c][i] for c in FRAME_COLUMNS}


def write_frames_jsonl(docs: dict, path_or_file) -> int:
    """Write a ``{cell_id: to_doc()}`` mapping as frames JSONL.

    Line 1 is a meta record (format/version/interval/cells); every
    following line is one frame row tagged with its cell and machine
    index.  Keys sorted, compact separators — deterministic bytes.
    """
    close = False
    fh = path_or_file
    if isinstance(path_or_file, str):
        fh = open(path_or_file, "w")
        close = True
    try:
        intervals = {doc.get("interval_us") for doc in docs.values()}
        meta = {
            "format": FRAME_FORMAT,
            "version": FRAME_VERSION,
            "interval_us": (intervals.pop() if len(intervals) == 1
                            else None),
            "cells": sorted(docs),
        }
        fh.write(json.dumps(meta, sort_keys=True,
                            separators=(",", ":")) + "\n")
        n = 0
        for cell, mi, row in _doc_rows(docs):
            record = {"cell": cell, "machine": mi, **row}
            fh.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")
            n += 1
        return n
    finally:
        if close:
            fh.close()


def read_frames_jsonl(path_or_file) -> tuple:
    """Load a frames JSONL artifact; returns ``(meta, rows)`` where
    rows are plain dicts (with ``cell`` and ``machine`` tags)."""
    close = False
    fh = path_or_file
    if isinstance(path_or_file, str):
        fh = open(path_or_file)
        close = True
    try:
        meta = None
        rows = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if meta is None:
                if record.get("format") != FRAME_FORMAT:
                    raise ValueError(
                        f"not a {FRAME_FORMAT} artifact: first record "
                        f"has format={record.get('format')!r}")
                meta = record
            else:
                rows.append(record)
        if meta is None:
            raise ValueError("empty frames file")
        return meta, rows
    finally:
        if close:
            fh.close()


def write_frames_npz(docs: dict, path: str) -> None:
    """Columnar ``.npz`` export (one array per column plus cell/machine
    tags).  Gated on numpy being importable, per the repo's
    no-new-dependencies rule."""
    try:
        import numpy as np
    except ImportError as exc:  # pragma: no cover - env without numpy
        raise RuntimeError(
            "npz export needs numpy; use the JSONL export instead"
        ) from exc
    cells, machines = [], []
    data: dict[str, list] = {c: [] for c in FRAME_COLUMNS}
    for cell, mi, row in _doc_rows(docs):
        cells.append(cell)
        machines.append(mi)
        for c in FRAME_COLUMNS:
            data[c].append(row[c])
    arrays = {"cell": np.array(cells), "machine": np.array(machines)}
    for c in FRAME_COLUMNS:
        arrays[c] = np.array(data[c])
    np.savez_compressed(path, **arrays)


def frame_totals(rows, scope: str = "machine", cell: Optional[str] = None,
                 machine: Optional[int] = None) -> dict:
    """Fold frame rows back into run totals for one scope.

    Returns ``{"frames": n, "totals": {delta column -> sum}, "last":
    {gauge column -> last value}}``.  Integer totals reproduce the
    end-of-run ``Machine.metrics()`` counters exactly (the telescoping
    no-double-counting contract); float totals agree to accumulation
    error.
    """
    totals: dict = {c: 0 for c in DELTA_COLUMNS}
    last: dict = {c: 0 for c in GAUGE_COLUMNS}
    n = 0
    for row in rows:
        if row.get("scope") != scope:
            continue
        if cell is not None and row.get("cell") != cell:
            continue
        if machine is not None and row.get("machine") != machine:
            continue
        for c in DELTA_COLUMNS:
            totals[c] += row.get(c, 0)
        for c in GAUGE_COLUMNS:
            last[c] = row.get(c, 0)
        n += 1
    return {"frames": n, "totals": totals, "last": last}


# ----------------------------------------------------------------------
# event-driven hit-ratio timeline (absorbed from collectors)
# ----------------------------------------------------------------------
class LookupTimeline(Collector):
    """Per-cgroup hit ratio over virtual time, in fixed half-open
    windows ``[k*window, (k+1)*window)``.

    The event-driven sibling of :class:`TimeseriesSampler`: it derives
    the same hit-ratio-over-time signal from ``cache:lookup`` events
    when only a trace is available (no engine to tick a sampler in).
    This is the metric the real page cache cannot give you ("the page
    cache doesn't expose system-wide hit-rate metrics", §6.1.1) and the
    implementation the deprecated
    :class:`repro.obs.collectors.HitRatioTimeline` now delegates to.
    """

    tracepoints = ("cache:lookup",)

    def __init__(self, window_us: float = 100_000.0) -> None:
        self.window_us = window_us
        self.per_cgroup: dict[str, WindowedSeries] = {}

    def handle(self, event: TraceEvent) -> None:
        series = self.per_cgroup.get(event.cgroup)
        if series is None:
            series = self.per_cgroup[event.cgroup] = \
                WindowedSeries(self.window_us)
        series.add(event.ts_us, num=event.data.get("hit", 0), den=1)

    def series(self, cgroup: str) -> list[tuple]:
        """``(window_start_us, hit_ratio)`` points for one cgroup."""
        ws = self.per_cgroup.get(cgroup)
        return ws.ratios() if ws is not None else []

    def overall(self, cgroup: str) -> Optional[float]:
        """Whole-run hit ratio for one cgroup (None if unseen)."""
        ws = self.per_cgroup.get(cgroup)
        if ws is None:
            return None
        hits = sum(num for _start, num, _den in ws.series())
        lookups = sum(den for _start, _num, den in ws.series())
        return hits / lookups if lookups else 0.0
