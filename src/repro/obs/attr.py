"""Latency-attribution aggregation over ``span:close`` events.

:mod:`repro.obs.spans` emits one event per request whose components
sum exactly to the request's virtual duration; this module folds those
events into the answers people actually ask:

* :class:`SpanAggregator` — a :class:`~repro.obs.collectors.Collector`
  keyed by ``(cgroup, policy, span kind)``: counts, total duration,
  per-component sums and per-component log2 µs histograms.  Attach it
  to a live machine (which *enables* spans, per the tracepoint
  contract) or :meth:`~SpanAggregator.replay` a recorded trace.
* :func:`SpanAggregator.collapsed` — flamegraph-style collapsed
  stacks, one line per ``cgroup;policy;kind;component`` with integer
  microseconds, ready for ``flamegraph.pl``.
* :func:`format_breakdown` — the human table: where every virtual
  microsecond of each request class went, in percent.

Everything here is deterministic: dict insertion order never leaks
into output (all serialisations sort), so two identical runs — or a
serial and a parallel run of the same experiment plan — produce
byte-identical artifacts.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.collectors import Collector, Histogram
from repro.obs.spans import COMPONENTS
from repro.obs.trace import TraceEvent

#: Payload fields of a ``span:close`` event that are not components.
_META_FIELDS = ("span", "policy", "dur_us")


class SpanStats:
    """Aggregate state for one ``(cgroup, policy, kind)`` key."""

    __slots__ = ("count", "dur_us", "comps", "hists")

    def __init__(self) -> None:
        self.count = 0
        self.dur_us = 0.0
        #: component name -> total microseconds.
        self.comps: dict[str, float] = {}
        #: component name -> log2 histogram of per-request µs.
        self.hists: dict[str, Histogram] = {}

    def fold(self, data: dict) -> None:
        self.count += 1
        self.dur_us += data["dur_us"]
        comps = self.comps
        hists = self.hists
        for comp in COMPONENTS:
            us = data.get(comp)
            if us is None:
                continue
            comps[comp] = comps.get(comp, 0.0) + us
            hist = hists.get(comp)
            if hist is None:
                hist = hists[comp] = Histogram()
            hist.record(us)

    def merge(self, other: "SpanStats") -> None:
        self.count += other.count
        self.dur_us += other.dur_us
        for comp, us in other.comps.items():
            self.comps[comp] = self.comps.get(comp, 0.0) + us
        for comp, hist in other.hists.items():
            mine = self.hists.get(comp)
            if mine is None:
                mine = self.hists[comp] = Histogram()
            mine.merge(hist)

    def to_dict(self) -> dict:
        """JSON-safe summary with deterministic key order."""
        return {
            "count": self.count,
            "dur_us": self.dur_us,
            "avg_us": self.dur_us / self.count if self.count else 0.0,
            "components": {c: self.comps[c] for c in COMPONENTS
                           if c in self.comps},
            "hist_us": {c: self.hists[c].to_dict() for c in COMPONENTS
                        if c in self.hists},
        }


class SpanAggregator(Collector):
    """Fold ``span:close`` events into per-(cgroup, policy, kind) stats.

    Subscribing this collector is what *enables* span recording on a
    machine (the ``span:close`` tracepoint gates the whole subsystem),
    so the usual usage is::

        agg = SpanAggregator()
        with TraceSession(machine, collectors=[agg], buffer=False):
            run_workload(machine)
        print(format_breakdown(agg))
    """

    tracepoints = ("span:close",)

    def __init__(self) -> None:
        #: (cgroup, policy, kind) -> :class:`SpanStats`.
        self.stats: dict[tuple, SpanStats] = {}

    def handle(self, event: TraceEvent) -> None:
        data = event.data
        key = (event.cgroup, data["policy"], data["span"])
        stats = self.stats.get(key)
        if stats is None:
            stats = self.stats[key] = SpanStats()
        stats.fold(data)

    def replay(self, events: Iterable[TraceEvent]) -> "SpanAggregator":
        """Fold a recorded trace (only ``span:close`` events count)."""
        for event in events:
            if event.name == "span:close":
                self.handle(event)
        return self

    def merge(self, other: "SpanAggregator") -> "SpanAggregator":
        for key, stats in other.stats.items():
            mine = self.stats.get(key)
            if mine is None:
                mine = self.stats[key] = SpanStats()
            mine.merge(stats)
        return self

    @property
    def total_spans(self) -> int:
        return sum(s.count for s in self.stats.values())

    # ------------------------------------------------------------------
    # output formats
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """``"cgroup/policy/kind" -> stats`` dict, keys sorted."""
        return {"/".join(key): self.stats[key].to_dict()
                for key in sorted(self.stats)}

    def collapsed(self) -> str:
        """Collapsed-stack text: ``cgroup;policy;kind;component <µs>``.

        One line per component of each aggregation key, integer
        microseconds (rounded), sorted — the input format flamegraph
        tools consume, and a stable golden-file format for tests.
        """
        lines = []
        for key in sorted(self.stats):
            stats = self.stats[key]
            prefix = ";".join(key)
            for comp in COMPONENTS:
                us = stats.comps.get(comp)
                if us is None:
                    continue
                lines.append(f"{prefix};{comp} {int(round(us))}")
        return "\n".join(lines) + ("\n" if lines else "")


def format_breakdown(agg: SpanAggregator, width: int = 30) -> str:
    """Human breakdown table: percent of time per component.

    One block per ``(cgroup, policy, kind)``, components in canonical
    order with their share of the total duration and average µs per
    request — the "where does every virtual microsecond go" view.
    """
    if not agg.stats:
        return "(no spans recorded)"
    lines = []
    for key in sorted(agg.stats):
        stats = agg.stats[key]
        cgroup, policy, kind = key
        avg = stats.dur_us / stats.count if stats.count else 0.0
        lines.append(f"{cgroup} policy={policy} {kind}: "
                     f"{stats.count} spans, avg {avg:.2f}us")
        denom = stats.dur_us if stats.dur_us > 0.0 else 1.0
        for comp in COMPONENTS:
            us = stats.comps.get(comp)
            if us is None:
                continue
            share = us / denom
            bar = "#" * max(0, int(round(width * share)))
            lines.append(f"  {comp:>15s} {100.0 * share:6.2f}%  "
                         f"{us / stats.count:10.3f}us/req  |{bar}")
        lines.append("")
    return "\n".join(lines).rstrip("\n")
