"""Trace-replay fast path for policy sweeps.

Most cells of the big sweeps (Figure 6's hit-ratio grid, the Table 4/5
companions) only need *counters* — hits, misses, evictions, refaults,
disk pages — not tracepoints, spans, or fault injection.  Replay mode
re-runs exactly the same simulation through a stripped execution
stack, producing **bit-identical** results to the full engine
(``tests/test_replay.py`` enforces equality for every policy x stream
family):

* :class:`ReplayEngine` — the same smallest-clock-first scheduler with
  the same burst invariant and the same heap arithmetic, minus the
  per-step tracepoint checks and deadline/step-budget branches;
* :class:`~repro.cache_ext.registry.ReplayFolioRegistry` — the
  valid-folio registry with membership carried on the folio itself
  (same answers, no hash buckets on the eviction hot loop);
* the LSM read-plan cache
  (:meth:`~repro.apps.lsm.db.LsmDb.enable_plan_cache`) — point lookups
  whose structural context is unchanged replay their recorded
  ``read_page`` calls instead of re-walking bloom filters and indexes.
  The replayed calls are *the* virtual-time payload of a lookup, so
  cache state, stats and timing evolve identically.

What replay mode is **not**: it does not skip the device model or the
scheduler.  Which thread steps next feeds back through disk queueing
into cache state, so eliding either would change the counters.  Replay
strips *instrumentation and recomputation*, never physics.

Replay is incompatible with fault injection and hook budgets: the
watchdog-detach path mutates registry state in a way the folio-carried
layout cannot represent, and fault plans perturb the I/O stream.
:func:`enable_replay` refuses both up front, and
:meth:`~repro.kernel.machine.Machine.arm_faults` on a replay machine
is likewise refused.

Usage — normally via the mode plumbing (``repro.api.run(spec,
mode="replay")``, ``make_db_env(..., mode="replay")``, or the parallel
runner's ``--mode replay``), but directly::

    machine = Machine()
    enable_replay(machine)          # before any spawn
    ... build cgroups / db / policy as usual ...
"""

from __future__ import annotations

import gc
import heapq
from typing import Optional

from repro.kernel.machine import Machine
from repro.sim import engine as _engine_mod
from repro.sim.engine import Engine


class ReplayEngine(Engine):
    """The virtual-time engine minus per-step instrumentation.

    :meth:`run` with no deadline and no step budget (the experiment
    steady state) executes a trimmed loop: byte-for-byte the heap /
    seq / burst arithmetic of :meth:`Engine.run`, without the
    ``sched:switch`` / ``sched:exit`` tracepoint checks and the
    ``until_us`` / ``max_steps`` branches.  Any bounded call delegates
    to the full loop, so windowed experiments still work on a replay
    machine.

    Equivalence argument (same as the burst-scheduling invariant, see
    EXPERIMENTS.md): scheduling order depends only on the heap
    contents, the seq counter and the strict-less-than burst test, all
    of which this loop reproduces exactly; tracepoint emission is
    side-effect-free when disabled, and a replay machine never enables
    the scheduler tracepoints.
    """

    def run(self, until_us: Optional[float] = None,
            max_steps: Optional[int] = None) -> None:
        if until_us is not None or max_steps is not None:
            return super().run(until_us=until_us, max_steps=max_steps)
        # Folio <-> ListNode references form cycles, so miss-heavy
        # cells allocate cyclic garbage at hundreds of thousands of
        # objects per run and the collector's generation-0 passes cost
        # ~10% of wall time.  Virtual time never observes the
        # collector, so replay suspends it for the loop and runs one
        # full collection afterwards.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._run_trimmed()
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()

    def _run_trimmed(self) -> None:
        heap = self._heap
        heappop, heappush = heapq.heappop, heapq.heappush
        next_seq = self._seq.__next__
        while heap:
            if self._live_nondaemon == 0:
                return
            clock, _seq, thread = heappop(heap)
            if thread.done:
                continue
            while True:
                self.now_us = clock
                _engine_mod._current = thread
                try:
                    more = thread.step_fn(thread)
                finally:
                    _engine_mod._current = None
                thread.steps += 1
                if not more:
                    thread.done = True
                    thread.finish_us = thread.clock_us
                    self._nr_done += 1
                    if not thread.daemon:
                        self._live_nondaemon -= 1
                    self.now_us = max(self.now_us, thread.clock_us)
                    self._maybe_compact()
                    heap = self._heap
                    break
                clock = thread.clock_us
                # Same burst test as Engine.run: ties go to the heap
                # entry, only a strictly smaller clock keeps the burst.
                if (not self.burst_enabled
                        or (heap and clock >= heap[0][0])):
                    heappush(heap, (clock, next_seq(), thread))
                    break


def enable_replay(machine: Machine) -> Machine:
    """Switch ``machine`` onto the replay fast path.

    Must run before any thread is spawned (the engine is swapped) and
    before any policy attaches (policies pick their registry layout at
    construction).  Returns the machine for chaining.
    """
    if machine.replay_mode:
        return machine
    if machine.engine._threads:
        raise ValueError(
            "enable_replay must run before any thread is spawned")
    if machine.faults is not None or machine.hook_budget_us is not None:
        raise ValueError(
            "replay mode is incompatible with fault plans and hook "
            "budgets (watchdog detach mutates registry state the "
            "replay layout does not represent); use mode='full'")
    engine = ReplayEngine()
    engine.attach_trace(machine.trace)
    machine.engine = engine
    machine.replay_mode = True
    _wrap_arm_faults(machine)
    return machine


def _arm_faults_refused(plan):
    """Replacement ``arm_faults`` installed on replay machines.

    Module-level (not a closure) so a replay machine stays picklable —
    the snapshot subsystem (:mod:`repro.snapshot`) pickles whole
    machines, and a bound local function would break that.
    """
    raise ValueError(
        "cannot arm a fault plan on a replay-mode machine; "
        "build the machine with mode='full'")


def _wrap_arm_faults(machine: Machine) -> None:
    machine.arm_faults = _arm_faults_refused


def replay_counters(machine: Machine, cgroup: str = "app") -> dict:
    """The counter payload replay mode promises to match bit-for-bit.

    One dict of ints/floats per (machine, cgroup): hits, misses,
    evictions, refaults, plus the machine-wide disk totals — the
    cross-check surface of ``tests/test_replay.py``.
    """
    metrics = machine.metrics()
    cg = metrics.cgroup(cgroup)
    stats = cg.stats
    return {
        "lookups": stats["lookups"],
        "hits": stats["hits"],
        "misses": stats["misses"],
        "insertions": stats["insertions"],
        "evictions": stats["evictions"],
        "refaults": stats["refaults"],
        "admission_rejects": stats["admission_rejects"],
        "hit_ratio": cg.hit_ratio,
        "disk_pages": metrics.disk["total_pages"],
        "now_us": metrics.now_us,
    }
