"""Block device with per-cgroup I/O accounting.

Wraps the :class:`repro.sim.resources.Disk` contention model and
attributes every request to the cgroup of the issuing thread, so
experiments that share one device between cgroups (Figure 11) can still
report per-workload disk traffic (Figure 7's x-axis).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.sim.engine import SimThread, current_thread
from repro.sim.resources import Disk


@dataclass
class CgroupIoStats:
    read_pages: int = 0
    write_pages: int = 0

    @property
    def total_pages(self) -> int:
        return self.read_pages + self.write_pages


class BlockDevice(Disk):
    """A :class:`Disk` that also keeps per-cgroup page counters."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.per_cgroup: dict[int, CgroupIoStats] = defaultdict(CgroupIoStats)

    def _cgroup_id(self, thread: SimThread) -> int:
        if thread is not None and thread.cgroup is not None:
            return thread.cgroup.id
        return 0

    def read(self, thread: SimThread, npages: int = 1,
             contiguous: bool = False) -> None:
        if thread is None:
            thread = current_thread()
        if thread is not None:
            super().read(thread, npages, contiguous)
            self.per_cgroup[self._cgroup_id(thread)].read_pages += npages
        else:
            # Outside the engine (unit tests): account, no timing.
            self.stats.reads += 1
            self.stats.read_pages += npages

    def write(self, thread: SimThread, npages: int = 1,
              contiguous: bool = False) -> None:
        if thread is None:
            thread = current_thread()
        if thread is not None:
            super().write(thread, npages, contiguous)
            self.per_cgroup[self._cgroup_id(thread)].write_pages += npages
        else:
            self.stats.writes += 1
            self.stats.write_pages += npages

    def cgroup_io(self, cgroup_id: int) -> CgroupIoStats:
        return self.per_cgroup[cgroup_id]
