"""Approximate scan mode: tolerance, determinism, refusals.

The scan contract (ISSUE 8) is different from replay's and snapshot's:
payloads are *not* bit-identical to the exact engine — the 8-thread op
interleaving is replaced by a deterministic canonical order — so the
tests here pin three things instead:

* **tolerance** — per-policy scan-vs-replay hit-ratio drift stays
  within the bounds measured when the stepper was built (generic
  policies a few tenths of a point; MRU and LHD looser — MRU amplifies
  any ordering difference near the eviction boundary, LHD's densities
  depend on cross-thread access gaps that the round barrier stretches);
* **bit-reproducibility** — the same scan twice is identical, a
  multi-cell pass equals N single-cell passes bitwise, and snapshot
  restores don't change a single bit;
* **refusals** — anything that needs the engine (faults, tracepoints,
  latency breakdowns, experiments with no scan plan) raises
  :class:`repro.scan.ScanUnsupportedError` with an actionable message,
  at both the api facade and the parallel runner.

Scales are small; the full-scale drift numbers live in EXPERIMENTS.md
and the benchmark suite records quick-scale drift per run.
"""

import json

import pytest

from repro import api
from repro.experiments import admission, fig6, fig8, fig9, fig10
from repro.experiments.harness import GENERIC_POLICY_NAMES
from repro.experiments.parallel import (apply_mode, execute,
                                        scan_drift_report)
from repro.faults.plan import FaultPlan
from repro.scan import ScanUnsupportedError, check_scan_machine
from repro.kernel.machine import Machine

YCSB_SCALE = dict(nkeys=2000, cgroup_pages=96, nops=1500,
                  warmup_ops=500, nthreads=2, zipf_theta=1.1)
TWITTER_SCALE = dict(nkeys=2000, cgroup_pages=80, nops=1500,
                     warmup_ops=500)
ADMISSION_SCALE = dict(nkeys=2000, cgroup_pages=96, nops=1500,
                       warmup_ops=500, nthreads=2)

#: Per-policy |scan - replay| hit-ratio bounds, in percentage points,
#: at YCSB_SCALE on workload C.  Measured drift at this scale:
#: default 0.20, mglru 0.10, fifo 0.00, mru 1.15, lfu 0.35,
#: s3fifo 0.00, lhd 0.65, mglru-bpf 0.05 — bounds carry ~2x headroom.
TOLERANCE_PP = {"default": 0.6, "mglru": 0.4, "fifo": 0.3, "mru": 2.5,
                "lfu": 0.9, "s3fifo": 0.3, "lhd": 2.0,
                "mglru-bpf": 0.4}


def drift_pp(scan: dict, exact: dict) -> float:
    return 100 * abs(scan["hit_ratio"] - exact["hit_ratio"])


class TestTolerance:
    @pytest.mark.parametrize("policy", GENERIC_POLICY_NAMES)
    def test_fig6_policy_within_tolerance(self, policy):
        exact = fig6.cell(policy=policy, workload="C", mode="replay",
                          **YCSB_SCALE)
        scan = fig6.cell(policy=policy, workload="C", mode="scan",
                         **YCSB_SCALE)
        assert drift_pp(scan, exact) <= TOLERANCE_PP[policy]

    @pytest.mark.parametrize("workload", ("A", "E", "uniform-rw"))
    def test_fig6_workload_within_tolerance(self, workload):
        # A is read/update, E scan-heavy, uniform-rw exercises the
        # write path; C above covers the read-only zipfian case.
        exact = fig6.cell(policy="lfu", workload=workload,
                          mode="replay", **YCSB_SCALE)
        scan = fig6.cell(policy="lfu", workload=workload, mode="scan",
                         **YCSB_SCALE)
        assert drift_pp(scan, exact) <= 2.0

    @pytest.mark.parametrize("cluster", (17, 34))
    def test_fig8_cluster_within_tolerance(self, cluster):
        for policy in ("default", "lhd"):
            exact = fig8.cell(policy=policy, cluster=cluster,
                              mode="replay", **TWITTER_SCALE)
            scan = fig8.cell(policy=policy, cluster=cluster,
                             mode="scan", **TWITTER_SCALE)
            assert drift_pp(scan, exact) <= TOLERANCE_PP[policy]

    @pytest.mark.parametrize("filtered", (False, True))
    def test_admission_within_tolerance(self, filtered):
        exact = admission.cell(filtered=filtered, mode="replay",
                               **ADMISSION_SCALE)
        scan = admission.cell(filtered=filtered, mode="scan",
                              **ADMISSION_SCALE)
        assert drift_pp(scan, exact) <= 0.6

    def test_admission_rejects_live_under_scan(self):
        # ADMISSION_SCALE is too small for compaction to run inside
        # the measured window; at the quick scale the filter rejects
        # hundreds of compaction fetches, and that decision counter
        # must survive the mode change as a live signal (787 exact vs
        # 714 scan when this was calibrated — same order, not equal:
        # compaction is scheduled differently under canonical order).
        scan = admission.cell(filtered=True, mode="scan",
                              **admission.QUICK_SCALE)
        assert scan["admission_rejects"] > 0


class TestBitReproducibility:
    def test_scan_deterministic_run_to_run(self):
        one = fig6.cell(policy="lhd", workload="C", mode="scan",
                        **YCSB_SCALE)
        two = fig6.cell(policy="lhd", workload="C", mode="scan",
                        **YCSB_SCALE)
        assert one == two

    def test_multi_cell_equals_single_cells(self):
        # One fanned-out pass must be bitwise the N independent
        # single-cell passes: the canonical order is shared and the
        # cells never interact.
        policies = ("default", "mru", "lfu", "lhd")
        ids = [f"C/{p}" for p in policies]
        kwargs = [dict(policy=p, workload="C", **YCSB_SCALE)
                  for p in policies]
        multi = fig6.scan_cells(ids, kwargs)
        for cell_id, kw in zip(ids, kwargs):
            assert multi[cell_id] == fig6.cell(**kw, mode="scan")

    def test_snapshot_restore_identical(self):
        cold = fig6.cell(policy="s3fifo", workload="B", mode="scan",
                         snapshot=False, **YCSB_SCALE)
        restored = fig6.cell(policy="s3fifo", workload="B", mode="scan",
                             snapshot=True, **YCSB_SCALE)
        assert cold == restored

    def test_jobs_independent(self):
        # Rows are internally serial and independent, so the merged
        # table cannot depend on worker count.
        spec_a = admission.plan(quick=True)
        spec_b = admission.plan(quick=True)
        serial = execute(spec_a, serial=True, mode="scan")
        forked = execute(spec_b, jobs=2, serial=False, mode="scan")
        assert serial.result.format_table() == \
            forked.result.format_table()


class TestRefusals:
    def test_api_faults_refused(self):
        with pytest.raises(ScanUnsupportedError, match="faults"):
            api.run("fig6", quick=True, mode="scan",
                    faults=FaultPlan())

    def test_api_trace_refused(self):
        with pytest.raises(ScanUnsupportedError, match="--trace"):
            api.run("fig6", quick=True, mode="scan", trace=True)

    def test_api_breakdown_refused(self):
        with pytest.raises(ScanUnsupportedError, match="--breakdown"):
            api.run("fig6", quick=True, mode="scan", breakdown=True)

    def test_no_scan_plan_refused(self):
        # fig9 measures eviction-latency breakdowns; it declares no
        # scan plan and the runner must say so, naming the way out.
        with pytest.raises(ScanUnsupportedError, match="fig9"):
            apply_mode(fig9.plan(quick=True), "scan")

    def test_machine_with_faults_refused(self):
        machine = Machine()
        machine.arm_faults(FaultPlan())
        with pytest.raises(ScanUnsupportedError):
            check_scan_machine(machine)

    def test_refusal_is_value_error(self):
        # Callers that predate scan mode catch ValueError; the typed
        # refusal must stay inside that contract.
        assert issubclass(ScanUnsupportedError, ValueError)


class TestModeSelection:
    def test_auto_never_picks_scan_for_metric_tables(self):
        # fig6's table reports throughput/latency columns, so auto
        # must keep the bit-identical replay path: every cell stays a
        # per-cell CellSpec with mode="replay" kwargs.
        spec = apply_mode(fig6.plan(quick=True), "auto")
        assert len(spec.cells) == 64
        assert all(c.kwargs.get("mode") == "replay"
                   for c in spec.cells)

    def test_auto_picks_scan_when_hit_ratio_only(self):
        spec = fig6.plan(quick=True)
        spec.meta["hit_ratio_only"] = True
        grouped = apply_mode(spec, "auto")
        # Grouped: one cell per workload row instead of one per
        # (workload, policy).
        assert len(grouped.cells) == len(spec.meta["scan"]["rows"])

    def test_scan_groups_rows(self):
        grouped = apply_mode(fig6.plan(quick=True), "scan")
        assert len(grouped.cells) == 8
        assert all(c.kwargs["cells"][0]["mode"] == "scan"
                   for c in grouped.cells)

    def test_fig10_single_pass(self):
        grouped = apply_mode(fig10.plan(quick=True), "scan")
        assert len(grouped.cells) == 1
        assert len(grouped.cells[0].kwargs["ids"]) == 6


class TestDriftReport:
    def test_report_shape_and_keys(self):
        from repro.experiments.harness import ExperimentResult
        result = ExperimentResult(
            "t", headers=["workload", "policy", "ops_per_sec",
                          "hit_ratio"])
        result.add_row("C", "mru", 100.0, 0.43)
        doc = json.loads(scan_drift_report(result, "fig6", "quick"))
        assert doc["mode"] == "scan"
        cell = doc["cells"]["C/mru"]
        assert cell["scan_hit_ratio"] == 0.43
        if doc["reference"]:
            assert cell["drift_pp"] == pytest.approx(
                100 * abs(0.43 - cell["exact_hit_ratio"]))

    def test_integer_labels_stay_in_key(self):
        from repro.experiments.harness import ExperimentResult
        result = ExperimentResult(
            "t", headers=["cluster", "policy", "ops_per_sec",
                          "hit_ratio"])
        result.add_row(17, "lfu", 100.0, 0.5)
        doc = json.loads(scan_drift_report(result, "fig8", "quick"))
        assert "17/lfu" in doc["cells"]

    def test_cli_writes_artifact(self, tmp_path, capsys):
        from repro.experiments.parallel import main
        drift = tmp_path / "drift.json"
        rc = main(["admission", "--quick", "--serial", "--mode",
                   "scan", "--drift-report", str(drift)])
        assert rc == 0
        doc = json.loads(drift.read_text())
        assert set(doc["cells"]) == {"baseline", "admission-filter"}

    def test_cli_refusal_is_clean(self, capsys):
        from repro.experiments.parallel import main
        with pytest.raises(SystemExit) as exc:
            main(["fig6", "--quick", "--serial", "--mode", "scan",
                  "--trace"])
        assert exc.value.code == 2
        assert "--trace" in capsys.readouterr().err
