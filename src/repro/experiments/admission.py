"""§6.1.5 — application-informed admission filter.

Uniform read/write workload on the LSM store (the paper uses RocksDB)
with background compaction running.  The admission filter keeps pages
fetched *by compaction threads* out of the page cache, so compaction's
bulk reads stop evicting the folios the read path needs.

Paper result: P99 read latency improves 17% (2.61 ms -> 2.16 ms);
throughput is roughly unchanged because compaction is infrequent.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.harness import (CellSpec, ExperimentResult,
                                       ExperimentSpec, make_db_env,
                                       warm_db_env_snapshot)
from repro.policies.admission import make_admission_filter_policy
from repro.workloads.ycsb import YCSB_WORKLOADS, YcsbRunner

FULL_SCALE = {"nkeys": 40000, "cgroup_pages": 1000, "nops": 40000,
              "warmup_ops": 10000, "nthreads": 8}
QUICK_SCALE = {"nkeys": 6000, "cgroup_pages": 192, "nops": 4000,
               "warmup_ops": 1000, "nthreads": 4}


def _build_env(filtered: bool, nkeys: int, cgroup_pages: int,
               mode: str, snapshot: bool):
    from repro.apps.lsm import DbOptions
    # A small memtable keeps flushes frequent so background compaction
    # actually runs inside the measured window (the paper's RocksDB
    # compacts continuously under its uniform R/W load).
    env = make_db_env("default", cgroup_pages=cgroup_pages,
                      nkeys=nkeys, compaction_thread=True,
                      db_options=DbOptions(memtable_entries=256),
                      mode=mode, snapshot=snapshot)
    if filtered:
        ops = make_admission_filter_policy()
        env.machine.attach(env.cgroup, ops)
        tid_map = ops.user_maps["compaction_tids"]
        for thread in env.db.compaction_threads:
            tid_map.update(thread.tid, 1)
    return env


def run_one(filtered: bool, nkeys: int, cgroup_pages: int, nops: int,
            warmup_ops: int, nthreads: int, seed: int = 42,
            mode: str = "full", snapshot: bool = False):
    env = _build_env(filtered, nkeys, cgroup_pages, mode, snapshot)
    if mode == "scan":
        from repro.scan import ycsb_scan
        result = ycsb_scan([env], YCSB_WORKLOADS["uniform-rw"],
                           nkeys=nkeys, nops=nops, nthreads=nthreads,
                           warmup_ops=warmup_ops, seed=seed)[0]
        return result, env
    runner = YcsbRunner(env.db, YCSB_WORKLOADS["uniform-rw"],
                        nkeys=nkeys, nops=nops, nthreads=nthreads,
                        warmup_ops=warmup_ops, seed=seed)
    return runner.run(), env


def prepare_snapshot(nkeys: int = 0, cgroup_pages: int = 0,
                     mode: str = "full", **_ignored) -> None:
    """``snapshot_prepare`` companion mirroring :func:`run_one`'s
    environment shape (fixed default kernel, small memtable)."""
    from repro.apps.lsm import DbOptions
    warm_db_env_snapshot("default", cgroup_pages=cgroup_pages,
                         nkeys=nkeys,
                         db_options=DbOptions(memtable_entries=256),
                         mode=mode)


def _payload(result, env) -> dict:
    metrics = env.cgroup.metrics()
    return {"throughput": result.throughput,
            "p99_read_us": result.p99_read_us,
            "admission_rejects": metrics.stats["admission_rejects"],
            "hit_ratio": metrics.hit_ratio}


def cell(filtered: bool, **params) -> dict:
    result, env = run_one(filtered, **params)
    return _payload(result, env)


def scan_cells(ids: list, cells: list, snapshot: bool = False,
               prepares=None) -> dict:
    """Baseline + admission-filter as one multi-cell scan pass (both
    cells replay the same uniform-R/W stream)."""
    from repro.scan import ycsb_scan
    first = cells[0]
    envs = [_build_env(kw["filtered"], kw["nkeys"], kw["cgroup_pages"],
                       "scan", snapshot or kw.get("snapshot", False))
            for kw in cells]
    results = ycsb_scan(envs, YCSB_WORKLOADS["uniform-rw"],
                        nkeys=first["nkeys"], nops=first["nops"],
                        nthreads=first["nthreads"],
                        warmup_ops=first["warmup_ops"],
                        seed=first.get("seed", 42))
    return {cell_id: _payload(result, env)
            for cell_id, result, env in zip(ids, results, envs)}


def plan(quick: bool = False, scale: dict = None) -> ExperimentSpec:
    params = dict(QUICK_SCALE if quick else FULL_SCALE)
    if scale:
        params.update(scale)
    cells = [CellSpec("admission",
                      "admission-filter" if filtered else "baseline",
                      cell, dict(filtered=filtered, **params),
                      supports_replay=True, supports_snapshot=True,
                      snapshot_prepare=prepare_snapshot,
                      supports_scan=True)
             for filtered in (False, True)]
    return ExperimentSpec("admission", cells, _merge,
                          meta={"labels": ["baseline",
                                           "admission-filter"],
                                "scan": {"fn": scan_cells,
                                         "rows": [("uniform-rw",
                                                   ["baseline",
                                                    "admission-filter"])]}})


def _merge(meta: dict, payloads: dict) -> ExperimentResult:
    out = ExperimentResult(
        "§6.1.5: compaction admission filter (uniform R/W)",
        headers=["variant", "ops_per_sec", "p99_read_us",
                 "admission_rejects", "hit_ratio"])
    for label in meta["labels"]:
        c = payloads[label]
        out.add_row(label,
                    round(c["throughput"], 1),
                    round(c["p99_read_us"], 1),
                    c["admission_rejects"],
                    round(c["hit_ratio"], 4))
    out.notes.append(
        "paper: P99 -17% (2.61ms -> 2.16ms), throughput ~unchanged")
    return out


def run(quick: bool = False, scale: dict = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    from repro.experiments.parallel import run_spec
    spec = plan(quick=quick, scale=scale)
    return run_spec(spec, jobs=jobs, serial=jobs is None)


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(run().format_table())
