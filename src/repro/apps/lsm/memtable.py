"""Memtable and write-ahead log."""

from __future__ import annotations

from repro.snapshot import SnapshotFriendly
from bisect import bisect_left
from typing import TYPE_CHECKING, Iterator, Optional

from repro.apps.lsm.format import RecordFormat

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.vfs import Filesystem, SimFile


class MemTable(SnapshotFriendly):
    """In-memory write buffer.

    A plain dict (point lookups dominate); sorted views are
    materialized only at flush/scan time.  Tombstones are stored as
    ``None`` values and must survive until compaction discards them at
    the bottom level.
    """

    def __init__(self, fmt: RecordFormat) -> None:
        self.fmt = fmt
        self._data: dict[str, object] = {}
        # Cached sorted view; scan-heavy workloads call sorted_items()
        # once per scan but mutate only once per put, so re-sorting on
        # every call dominated the scan CPU profile.
        self._sorted: Optional[list] = None

    def put(self, key: str, value) -> None:
        self._data[key] = value
        self._sorted = None

    def get(self, key: str) -> tuple[bool, Optional[object]]:
        if key in self._data:
            return (True, self._data[key])
        return (False, None)

    def __len__(self) -> int:
        return len(self._data)

    @property
    def approx_bytes(self) -> int:
        return len(self._data) * self.fmt.record_bytes

    def sorted_items(self) -> list[tuple]:
        items = self._sorted
        if items is None:
            items = self._sorted = sorted(self._data.items())
        return items

    def iter_from(self, start_key: str) -> Iterator[tuple]:
        items = self.sorted_items()
        start = bisect_left(items, (start_key,))
        for pos in range(start, len(items)):
            yield items[pos]

    def clear(self) -> None:
        self._data.clear()
        self._sorted = None


class WriteAheadLog(SnapshotFriendly):
    """Append-only log making memtable contents durable.

    Each record lands in the current log page; a full page is written
    through the page cache (dirty folio -> eventual writeback), which
    is how LevelDB's default non-synced WAL behaves.  ``rotate()``
    deletes the log after a successful flush — exercising the
    truncation/removal path of the page cache.
    """

    def __init__(self, fs: "Filesystem", name: str,
                 fmt: RecordFormat) -> None:
        self.fs = fs
        self.name = name
        self.fmt = fmt
        self.file: "SimFile" = fs.create(name)
        self._page: list = []
        self._generation = 0
        self.records = 0

    @property
    def entries_per_page(self) -> int:
        return self.fmt.entries_per_page

    def append(self, key: str, value) -> None:
        self._page.append((key, value))
        self.records += 1
        if len(self._page) >= self.entries_per_page:
            self.fs.append_page(self.file, self._page)
            self._page = []

    def rotate(self) -> None:
        """Discard the current log and start a fresh one."""
        self.fs.delete(self.file.name)
        self._generation += 1
        self._page = []
        self.file = self.fs.create(f"{self.name}.{self._generation}")
