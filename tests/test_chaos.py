"""Chaos grid acceptance: no crash, bounded degradation, determinism.

The claims under test (see :mod:`repro.experiments.chaos`): every
scenario cell completes without an unhandled exception; degradation
stays within each scenario's budget; fault injection is a pure
function of (plan seed, virtual time) so serial and parallel grid
executions — and repeated runs — are byte-identical; and spans stay
purely observational even while faults are being injected.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.experiments import chaos
from repro.experiments.parallel import execute

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not HAVE_FORK,
                                reason="parallel runner requires fork")

#: A trimmed quick-scale grid: every fault domain (device, policy,
#: memory) appears, but at sizes that keep the suite fast.
SMALL = {"nkeys": 2500, "cgroup_pages": 128, "nops": 1500,
         "warmup_ops": 800, "nthreads": 2, "zipf_theta": 1.1,
         "horizon_us": 20_000.0}
SMALL_SCENARIOS = ("flaky-disk", "buggy-policy", "mem-shock")


def small_spec(scenarios=SMALL_SCENARIOS, workloads=("A",)):
    return chaos.plan(quick=True, scenarios=scenarios,
                      workloads=workloads, scale=SMALL)


def small_cell(scenario, workload="A", **overrides):
    params = dict(SMALL, **overrides)
    horizon = params.pop("horizon_us")
    return chaos.cell(workload, scenario, horizon, **params)


# ----------------------------------------------------------------------
# no crash + degradation observable
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scenario", chaos.SCENARIOS)
def test_every_scenario_completes(scenario):
    """Each scenario runs end to end; armed cells actually inject."""
    payload = small_cell(scenario)
    assert payload["throughput"] > 0
    if scenario == "baseline":
        assert payload["fired"] == {}
    else:
        assert sum(payload["fired"].values()) > 0


def test_flaky_disk_errors_absorbed_by_retries():
    payload = small_cell("flaky-disk")
    # Injected EIOs show up on the disk, but the retry path absorbs
    # most: the app-level error count is far below the injected count.
    assert payload["disk_errors"] > 0
    assert payload["io_retries"] > 0
    assert payload["db_io_errors"] <= payload["disk_errors"]


def test_buggy_policy_quarantine_cycle_observable():
    payload = small_cell("buggy-policy")
    assert payload["budget_overruns"] >= 1
    assert payload["quarantines"] >= 1
    assert payload["reattaches"] >= 1
    # The stall window ends mid-run, so the policy finishes attached.
    assert payload["policy_attached"]


def test_mem_shock_shrinks_without_crash():
    payload = small_cell("mem-shock")
    assert payload["fired"].get("memory_shrink") == 1
    base = small_cell("baseline")
    # Half the cache is gone: hit ratio must not improve.
    assert payload["hit_ratio"] <= base["hit_ratio"]


def test_budgets_hold_on_small_grid():
    report = execute(small_spec(), serial=True)
    table = report.result.format_table()
    assert "NO" not in table.split()  # the within_budget column
    assert not any(n.startswith("BUDGET VIOLATIONS")
                   for n in report.result.notes)


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        chaos.scenario_plan("gremlins", 1000.0)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_repeat_run_byte_identical():
    assert small_cell("flaky-disk") == small_cell("flaky-disk")


@needs_fork
def test_serial_parallel_equivalence():
    serial = execute(small_spec(), serial=True)
    parallel = execute(small_spec(), jobs=3)
    assert serial.result.format_table() == parallel.result.format_table()
    assert not parallel.fallbacks


def test_guard_faults_check_passes():
    from repro.obs.guard import run_faults_check
    report = run_faults_check(scenarios=("flaky-disk",))
    assert report["passed"], report


# ----------------------------------------------------------------------
# spans stay observational under faults
# ----------------------------------------------------------------------
def test_span_invariant_holds_under_faults():
    """Injected waits (retries, stalls, timeouts) are attributed like
    any other wait: per-span component sums still reproduce the
    aggregate duration, and attaching the aggregator never perturbs
    the faulted run's virtual-time results."""
    from repro.obs.attr import SpanAggregator

    def run(collectors=()):
        from repro.experiments.harness import make_db_env
        from repro.obs.trace import TraceSession

        params = dict(SMALL)
        horizon = params.pop("horizon_us")
        env = make_db_env(chaos.POLICY,
                          cgroup_pages=params["cgroup_pages"],
                          nkeys=params["nkeys"], compaction_thread=True)
        env.machine.arm_faults(chaos.scenario_plan("flaky-disk", horizon))
        session = None
        if collectors:
            session = TraceSession(env.machine,
                                   collectors=list(collectors),
                                   buffer=False)
            session.start()
        result = chaos._run_workload(env, "A", params)
        if session is not None:
            session.stop()
        return result.throughput, env.machine.now_us

    base = run()
    agg = SpanAggregator()
    spanned = run(collectors=[agg])
    assert base == spanned
    assert agg.total_spans > 0
    total_dur = sum(s.dur_us for s in agg.stats.values())
    total_comp = sum(sum(s.comps.values()) for s in agg.stats.values())
    assert total_comp == pytest.approx(total_dur, rel=1e-6)
