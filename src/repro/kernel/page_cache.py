"""The page cache: folio lifecycle, reclaim driver, policy dispatch.

This module is the seam where everything meets.  It owns:

* the **insert path**: admission (including the cache_ext admission
  filter of §5.6), refault detection against shadow entries, cgroup
  charging, and policy notification;
* the **access path**: hit accounting and ``folio_mark_accessed``
  semantics;
* the **reclaim driver**: per-cgroup direct reclaim in 32-folio batches
  through the eviction-candidate interface (§4.2.3), candidate
  *validation* against the valid-folio registry and pin counts (§4.4),
  and the **eviction fallback** to the kernel policy when a custom
  policy underdelivers;
* the **removal path** shared by eviction and truncation — the paper's
  distinction between "request for eviction" and "folio removal".
"""

from __future__ import annotations

from repro.snapshot import SnapshotFriendly
from typing import TYPE_CHECKING, Optional

from repro.kernel.address_space import AddressSpace
from repro.kernel.cgroup import MemCgroup
from repro.kernel.default_policy import DefaultLruPolicy, KernelPolicy
from repro.kernel.errors import EBUSY, EIO, ENOMEM, ETIMEDOUT
from repro.kernel.folio import Folio
from repro.kernel.mglru import MgLruPolicy
from repro.kernel.shadow import make_shadow, refault_should_activate
from repro.kernel.stats import CacheStats
from repro.sim.engine import current_thread

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.machine import Machine

#: Eviction candidates are proposed to the kernel in batches of up to 32
#: folios (struct eviction_ctx in Figure 3 of the paper).
EVICTION_BATCH = 32


class ExtPolicyBase:
    """Hook surface a cache_ext policy presents to the reclaim driver.

    The real framework lives in :mod:`repro.cache_ext.framework`; this
    base class only defines the contract (and the no-hook defaults) so
    the kernel layer has no import dependency on cache_ext.
    """

    name = "ext-policy"

    def admit(self, mapping: AddressSpace, index: int) -> bool:
        """Admission filter: False means serve the I/O uncached."""
        return True

    def readahead_hint(self, mapping: AddressSpace, index: int,
                       seq_streak: int) -> Optional[int]:
        """Custom readahead window for a miss (the FetchBPF-style
        extension hook); None keeps the kernel heuristic."""
        return None

    def folio_added(self, folio: Folio) -> None:
        raise NotImplementedError

    def folio_accessed(self, folio: Folio) -> None:
        raise NotImplementedError

    def folio_removed(self, folio: Folio) -> None:
        raise NotImplementedError

    def folios_removed(self, folios: list[Folio]) -> None:
        """Batched removal notification; semantically a loop over
        :meth:`folio_removed` (overridden by the framework to bind the
        dispatch machinery once per batch)."""
        for folio in folios:
            self.folio_removed(folio)

    def propose_candidates(self, nr: int) -> list[Folio]:
        """Run the policy's evict_folios program; returns raw proposals
        (the kernel validates them afterwards)."""
        raise NotImplementedError

    def holds_reference(self, folio: Folio) -> bool:
        """Registry membership test used during validation."""
        raise NotImplementedError


class PageCache(SnapshotFriendly):
    """The machine-wide page cache."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.stats = CacheStats()
        # Cached tracepoints (repro.obs): the hot-path pattern is one
        # attribute load + branch per event site when tracing is off.
        trace = machine.trace
        self._tp_lookup = trace.tracepoint("cache:lookup")
        self._tp_insert = trace.tracepoint("cache:insert")
        self._tp_evict = trace.tracepoint("cache:evict")
        self._tp_refault = trace.tracepoint("cache:refault")
        self._tp_activation = trace.tracepoint("cache:activation")
        self._tp_admission_reject = trace.tracepoint("cache:admission_reject")
        self._tp_writeback = trace.tracepoint("cache:writeback")
        self._tp_fallback = trace.tracepoint("cache_ext:fallback_eviction")
        #: Ablation switch for §4.4's safety/overhead trade-off: when
        #: False, candidate folios skip the registry lookup (pin and
        #: residency checks remain — the simulator must not crash).
        #: The paper anticipates removing the registry check once eBPF
        #: can track trusted pointers; this measures what that buys.
        self.validate_registry = True
        #: CPU cost of one registry validation (hash lookup under a
        #: bucket lock).
        self.registry_check_us = 0.05

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _charge_cpu(self, us: float) -> None:
        thread = current_thread()
        if thread is not None:
            thread.advance(us)

    def _current_cgroup(self) -> MemCgroup:
        thread = current_thread()
        if thread is not None and thread.cgroup is not None:
            return thread.cgroup
        return self.machine.root_cgroup

    def _trace_point(self) -> tuple:
        """(virtual ts, tid) for a trace event at the current site."""
        thread = current_thread()
        if thread is not None:
            return thread.clock_us, thread.tid
        return self.machine.engine.now_us, 0

    @staticmethod
    def make_kernel_policy(kind: str, memcg: MemCgroup) -> KernelPolicy:
        """Instantiate the kernel-resident policy for a cgroup.

        ``kind`` selects between the default two-list LRU and MGLRU,
        mirroring the ``lru_gen`` boot/runtime switch.
        """
        if kind == "default":
            return DefaultLruPolicy(memcg)
        if kind == "mglru":
            return MgLruPolicy(memcg)
        raise ValueError(f"unknown kernel policy: {kind!r}")

    # ------------------------------------------------------------------
    # access path
    # ------------------------------------------------------------------
    def lookup(self, mapping: AddressSpace, index: int) -> Optional[Folio]:
        """Find a resident folio without touching recency state."""
        return mapping.lookup(index)

    def mark_accessed(self, folio: Folio, update_recency: bool = True) -> None:
        """``folio_mark_accessed``: record a hit on a resident folio.

        Hit statistics accrue to the *accessing* cgroup (a task in
        cgroup A hitting cgroup B's folio counts towards A's workload),
        while the recency update lands in the owning cgroup's lists —
        the cross-cgroup sharing semantics of §2.1.

        ``update_recency=False`` implements FADV_NOREUSE semantics: the
        data is read but the folio earns no promotion.
        """
        # The calling thread is resolved once per hit: this path runs
        # once per operation, and each current_thread() lookup costs a
        # module-global load plus None checks.
        thread = current_thread()
        if thread is not None and thread.cgroup is not None:
            accessor = thread.cgroup
        else:
            accessor = self.machine.root_cgroup
        # Stats objects are bound once per call: the access path runs
        # once per operation and the attribute chains add up.
        astats = accessor.stats
        astats.hits += 1
        astats.lookups += 1
        stats = self.stats
        stats.hits += 1
        stats.lookups += 1
        tp = self._tp_lookup
        if tp.enabled:
            if thread is not None:
                ts, tid = thread.clock_us, thread.tid
            else:
                ts, tid = self.machine.engine.now_us, 0
            tp.emit(ts, accessor.name, tid, hit=1,
                    file=folio.mapping.file_id, index=folio.index)
        if thread is not None:
            # Inlined thread.advance; the hit cost is configured, >= 0.
            us = self.machine.costs.cache_hit_us
            thread.clock_us += us
            thread.cpu_us += us
            span = thread.span
            if span is not None:
                span.add("cache_hit", us)
        if not update_recency:
            return
        owner = folio.memcg
        owner.kernel_policy.folio_accessed(folio)
        if owner.ext_policy is not None:
            owner.ext_policy.folio_accessed(folio)

    # ------------------------------------------------------------------
    # insert path
    # ------------------------------------------------------------------
    def add_folio(self, mapping: AddressSpace, index: int,
                  memcg: Optional[MemCgroup] = None) -> Optional[Folio]:
        """Insert a freshly read page into the cache.

        Returns the new folio, or ``None`` if the cgroup's admission
        filter rejected it (the caller then treats the read as direct
        I/O: the device transfer has already happened, nothing is
        cached).

        Runs refault detection, charges the cgroup, notifies both the
        kernel policy and any attached cache_ext policy, and triggers
        direct reclaim if the charge pushed the cgroup over its limit.
        """
        # The calling thread is resolved once for the whole insert:
        # cgroup attribution, every trace point and the CPU charge all
        # need it, and each current_thread() lookup costs a module-
        # global load plus None checks.
        thread = current_thread()
        if memcg is None:
            if thread is not None and thread.cgroup is not None:
                memcg = thread.cgroup  # inlined _current_cgroup()
            else:
                memcg = self.machine.root_cgroup

        ext = memcg.ext_policy
        if ext is not None and not ext.admit(mapping, index):
            memcg.stats.admission_rejects += 1
            self.stats.admission_rejects += 1
            tp = self._tp_admission_reject
            if tp.enabled:
                ts, tid = self._trace_point()
                tp.emit(ts, memcg.name, tid, file=mapping.file_id,
                        index=index)
            return None

        folio = Folio(mapping, index, memcg)
        folio.uptodate = True
        folio.inserted_at = self.machine.engine.now_us

        mstats = memcg.stats
        stats = self.stats
        refault_activate = False
        shadow = mapping.take_shadow(index)
        if shadow is not None and shadow.memcg_id == memcg.id:
            mstats.refaults += 1
            stats.refaults += 1
            tp = self._tp_refault
            if tp.enabled:
                ts, tid = self._trace_point()
                tp.emit(ts, memcg.name, tid, file=mapping.file_id,
                        index=index)
            kernel_policy = memcg.kernel_policy
            if isinstance(kernel_policy, MgLruPolicy):
                kernel_policy.record_refault(shadow.tier)
            refault_activate = refault_should_activate(shadow, memcg)
            if refault_activate:
                mstats.activations += 1
                stats.activations += 1
                tp = self._tp_activation
                if tp.enabled:
                    ts, tid = self._trace_point()
                    tp.emit(ts, memcg.name, tid, file=mapping.file_id,
                            index=index)

        # Inlined mapping.insert(folio): the duplicate guard is kept;
        # the shadow pop it would repeat is a no-op here because
        # take_shadow() above already consumed the slot.
        folios = mapping._folios
        if index in folios:
            raise RuntimeError(
                f"mapping {mapping.file_id}: duplicate insert at {index}")
        folios[index] = folio
        memcg.charged_pages += 1  # inlined memcg.charge()
        memcg.kernel_policy.folio_inserted(folio, refault_activate)
        # Re-read ext_policy: admit() may have watchdog-detached it.
        ext = memcg.ext_policy
        if ext is not None:
            ext.folio_added(folio)
        mstats.insertions += 1
        stats.insertions += 1
        tp = self._tp_insert
        if tp.enabled:
            ts, tid = self._trace_point()
            tp.emit(ts, memcg.name, tid, file=mapping.file_id, index=index,
                    charged=memcg.charged_pages)
        if thread is not None:
            # Inlined thread.advance; the miss cost is configured, >= 0.
            us = self.machine.costs.cache_miss_us
            thread.clock_us += us
            thread.cpu_us += us

        limit = memcg.limit_pages
        if limit is not None and memcg.charged_pages > limit:
            # (Inlined memcg.over_limit.)  Direct reclaim with slack:
            # reclaim a little beyond the excess (SWAP_CLUSTER_MAX-
            # style, but proportional so tiny cgroups aren't flushed
            # wholesale) so steady-state insertions don't pay a reclaim
            # pass each — kernel watermark hysteresis.
            slack = min(EVICTION_BATCH,
                        max(1, (memcg.limit_pages or 4096) // 32))
            self.reclaim_cgroup(
                memcg, nr_pages=max(memcg.excess_pages(), slack))
        return folio

    # ------------------------------------------------------------------
    # reclaim
    # ------------------------------------------------------------------
    def reclaim_cgroup(self, memcg: MemCgroup,
                       nr_pages: Optional[int] = None) -> int:
        """Direct reclaim: evict until the cgroup is under its limit.

        Raises :class:`ENOMEM` if repeated passes make no progress (the
        cgroup OOM case).  Returns the number of folios evicted.
        """
        if nr_pages is None:
            target = memcg.excess_pages()
        else:
            target = min(nr_pages, memcg.charged_pages)
        # Attribution: everything inside direct reclaim — candidate
        # proposal, validation, eviction CPU, writeback I/O — is a
        # stall on the access path; only explicit kfunc charges stay
        # attributed as policy time (repro.obs.spans section deltas).
        thread = current_thread()
        span = thread.span if thread is not None else None
        if span is not None:
            sect = span.begin_section("reclaim_stall", thread.clock_us)
        try:
            total_evicted = 0
            stalled_passes = 0
            while total_evicted < target or memcg.over_limit:
                remaining = max(target - total_evicted,
                                memcg.excess_pages())
                batch = min(EVICTION_BATCH, remaining)
                if batch <= 0:
                    break
                evicted = self._shrink_batch(memcg, batch)
                total_evicted += evicted
                if evicted == 0:
                    stalled_passes += 1
                    # The kernel retries reclaim many times before
                    # OOMing; policies like MGLRU legitimately need
                    # several passes when a scan keeps promoting
                    # protected folios.
                    if stalled_passes >= 16:
                        if memcg.over_limit:
                            raise ENOMEM(
                                f"cgroup {memcg.name}: cannot reclaim "
                                f"{remaining} pages "
                                f"({memcg.charged_pages}/"
                                f"{memcg.limit_pages})")
                        break  # slack portion is best-effort
                else:
                    stalled_passes = 0
            return total_evicted
        finally:
            if span is not None:
                span.end_section(thread.clock_us, sect)

    def _shrink_batch(self, memcg: MemCgroup, nr: int) -> int:
        """One batched pass of the eviction-candidate interface."""
        candidates: list[Folio] = []
        seen: set[int] = set()

        ext = memcg.ext_policy
        if ext is None:
            # Lazy quarantine exit: a watchdog-detached policy whose
            # backoff has elapsed re-attaches on the cgroup's next
            # reclaim pass (None when no quarantine is configured —
            # one attribute load and branch on the batch path).
            quarantine = self.machine.quarantine
            if quarantine is not None:
                ext = quarantine.maybe_reattach(memcg)
        if ext is not None:
            proposals = ext.propose_candidates(nr)
            mstats = memcg.stats
            stats = self.stats
            mstats.ext_candidates += len(proposals)
            stats.ext_candidates += len(proposals)
            # The kernel-side safety checks of §4.4, with the thread,
            # registry switch and per-check CPU cost bound once per
            # batch instead of once per proposed folio.  A candidate
            # is acceptable only if the registry still holds the
            # reference (i.e., the pointer is a live folio of this
            # policy's cgroup), the folio is resident, charged to this
            # cgroup, and not pinned by the kernel; the registry CPU
            # charge lands before the lookup, as before.
            thread = current_thread()
            validate = self.validate_registry
            check_us = self.registry_check_us
            holds_reference = ext.holds_reference
            for folio in proposals:
                ok = isinstance(folio, Folio)
                if ok and validate:
                    if thread is not None:
                        # Inlined thread.advance; check_us >= 0.
                        thread.clock_us += check_us
                        thread.cpu_us += check_us
                    ok = holds_reference(folio)
                if not (ok and folio.mapping is not None
                        and folio.memcg is memcg
                        and folio.pin_count == 0):
                    mstats.ext_invalid_candidates += 1
                    stats.ext_invalid_candidates += 1
                    continue
                if folio.id in seen:
                    continue
                seen.add(folio.id)
                candidates.append(folio)

        shortfall = nr - len(candidates)
        fallback_from = len(candidates)
        if shortfall > 0:
            # Eviction fallback (§4.4): the kernel's own lists fill the
            # gap left by an absent, lazy, or adversarial policy.
            for folio in memcg.kernel_policy.evict_candidates(shortfall):
                if folio.id in seen:
                    continue
                seen.add(folio.id)
                candidates.append(folio)

        return self._evict_batch(memcg, ext, candidates, fallback_from)

    def _evict_batch(self, memcg: MemCgroup, ext, candidates: list[Folio],
                     fallback_from: int) -> int:
        """Complete eviction for a whole validated candidate batch.

        Per-folio *simulated* behaviour is identical to calling
        :meth:`evict_folio` in a loop — writeback, shadow entry, list
        unlink and CPU charges happen folio by folio in the same order,
        so disk queueing and virtual time are unchanged.  What the
        batch saves is Python dispatch: stats objects, tracepoints, the
        disk, the kernel policy and the CPU-cost constants are bound
        once per 32-folio batch instead of re-resolved per folio.
        """
        disk_write = self.machine.disk.write
        thread = current_thread()
        mstats = memcg.stats
        stats = self.stats
        kernel_policy = memcg.kernel_policy
        eviction_tier = kernel_policy.eviction_tier
        kp_removed = kernel_policy.folio_removed
        evict_us = self.machine.costs.evict_us
        tp_writeback = self._tp_writeback
        tp_evict = self._tp_evict
        tp_fallback = self._tp_fallback

        evicted = 0
        for pos, folio in enumerate(candidates):
            mapping = folio.mapping
            if mapping is None or folio.pin_count > 0 \
                    or folio.memcg is not memcg:
                continue
            if folio.dirty:
                try:
                    disk_write(thread, 1)
                except (EIO, ETIMEDOUT):
                    # Writeback failed: the folio stays dirty and
                    # resident, reclaim moves on to the next candidate
                    # (the kernel's PG_error + redirty path).
                    mstats.writeback_errors += 1
                    stats.writeback_errors += 1
                    continue
                folio.dirty = False
                mstats.writebacks += 1
                stats.writebacks += 1
                if tp_writeback.enabled:
                    ts, tid = self._trace_point()
                    tp_writeback.emit(ts, memcg.name, tid,
                                      file=mapping.file_id,
                                      index=folio.index)
            shadow = make_shadow(
                memcg,
                workingset=folio.active or folio.workingset,
                tier=eviction_tier(folio))
            mapping.store_shadow(folio.index, shadow)
            file_id = mapping.file_id
            index = folio.index
            active = folio.active
            # Inlined mapping.remove(): its non-resident guard is
            # provably redundant here — ``folio.mapping is mapping``
            # was checked above, and only insert/remove ever set it,
            # so ``mapping._folios[index] is folio`` holds.
            del mapping._folios[index]
            folio.mapping = None
            kp_removed(folio)
            # Re-read ext_policy per folio: a policy program fault may
            # watchdog-detach it mid-batch.
            live_ext = memcg.ext_policy
            if live_ext is not None:
                live_ext.folio_removed(folio)
            # Inlined memcg.uncharge(), underflow guard preserved.
            if memcg.charged_pages < 1:
                raise RuntimeError(
                    f"cgroup {memcg.name}: uncharge below zero "
                    f"({memcg.charged_pages} - 1)")
            memcg.charged_pages -= 1
            memcg.eviction_clock += 1
            mstats.evictions += 1
            stats.evictions += 1
            if tp_evict.enabled:
                ts, tid = self._trace_point()
                tp_evict.emit(ts, memcg.name, tid, file=file_id,
                              index=index, active=1 if active else 0,
                              charged=memcg.charged_pages)
            if thread is not None:
                # Inlined thread.advance; evict_us is configured, >= 0.
                thread.clock_us += evict_us
                thread.cpu_us += evict_us
            evicted += 1
            if ext is not None and pos >= fallback_from:
                mstats.fallback_evictions += 1
                stats.fallback_evictions += 1
                if tp_fallback.enabled:
                    ts, tid = self._trace_point()
                    tp_fallback.emit(ts, memcg.name, tid, policy=ext.name,
                                     file=file_id, index=index)
        return evicted

    # ------------------------------------------------------------------
    # removal path
    # ------------------------------------------------------------------
    def evict_folio(self, folio: Folio, memcg: MemCgroup) -> bool:
        """Complete one eviction; returns False if the folio cannot go.

        Dirty folios are written back first (counted disk I/O — this is
        how write-heavy workloads show up on Figure 7's x-axis).

        Raises :class:`EBUSY` for a pinned folio: the caller asked to
        evict a page the kernel is actively using (batch reclaim never
        does — candidates are validated against pin counts first).
        """
        if folio.mapping is None or folio.memcg is not memcg:
            return False
        if folio.pinned:
            raise EBUSY(
                f"folio {folio.mapping.file_id}:{folio.index} is pinned "
                f"(pin_count={folio.pin_count})")
        # Attribution: eviction work (writeback, shadow entry, list
        # surgery) is a reclaim stall.  Nested inside reclaim_cgroup's
        # section this is a harmless save/restore; standalone callers
        # (DONTNEED) get their eviction time labelled too.
        thread = current_thread()
        span = thread.span if thread is not None else None
        if span is not None:
            sect = span.begin_section("reclaim_stall", thread.clock_us)
        try:
            if folio.dirty:
                try:
                    self.machine.disk.write(thread, 1)
                except (EIO, ETIMEDOUT):
                    # Writeback failed: leave the folio dirty+resident.
                    memcg.stats.writeback_errors += 1
                    self.stats.writeback_errors += 1
                    return False
                folio.dirty = False
                memcg.stats.writebacks += 1
                self.stats.writebacks += 1
                tp = self._tp_writeback
                if tp.enabled:
                    ts, tid = self._trace_point()
                    tp.emit(ts, memcg.name, tid,
                            file=folio.mapping.file_id,
                            index=folio.index)
            shadow = make_shadow(
                memcg,
                workingset=folio.active or folio.workingset,
                tier=memcg.kernel_policy.eviction_tier(folio))
            folio.mapping.store_shadow(folio.index, shadow)
            file_id = folio.mapping.file_id
            index = folio.index
            active = folio.active
            self._remove_folio(folio, memcg)
            memcg.eviction_clock += 1
            memcg.stats.evictions += 1
            self.stats.evictions += 1
            tp = self._tp_evict
            if tp.enabled:
                ts, tid = self._trace_point()
                tp.emit(ts, memcg.name, tid, file=file_id, index=index,
                        active=1 if active else 0,
                        charged=memcg.charged_pages)
            self._charge_cpu(self.machine.costs.evict_us)
            return True
        finally:
            if span is not None:
                span.end_section(thread.clock_us, sect)

    def remove_folio_no_shadow(self, folio: Folio) -> None:
        """Removal outside the eviction path (truncate/file delete).

        This is the paper's "folio removal" event that bypasses the
        eviction request: policies are told to clean up metadata, no
        shadow entry is left.
        """
        memcg = folio.memcg
        if folio.mapping is None:
            return
        self._remove_folio(folio, memcg)

    def remove_folios_no_shadow(self, folios) -> None:
        """Batched removal outside the eviction path (truncate/delete).

        The whole batch goes through one ``folios_removed`` dispatch
        per cgroup policy instead of re-entering the policy layer per
        folio.  Safe to batch because this path does no I/O and leaves
        no shadow entries: regrouping the per-folio hook charges does
        not move any disk request in virtual time.
        """
        batch = [folio for folio in folios if folio.mapping is not None]
        if not batch:
            return
        by_memcg: dict = {}
        for folio in batch:
            folio.mapping.remove(folio)
            group = by_memcg.get(folio.memcg)
            if group is None:
                by_memcg[folio.memcg] = [folio]
            else:
                group.append(folio)
        for memcg, group in by_memcg.items():
            kp_removed = memcg.kernel_policy.folio_removed
            for folio in group:
                kp_removed(folio)
            ext = memcg.ext_policy
            if ext is not None:
                ext.folios_removed(group)
            memcg.uncharge(len(group))

    def _remove_folio(self, folio: Folio, memcg: MemCgroup) -> None:
        folio.mapping.remove(folio)
        memcg.kernel_policy.folio_removed(folio)
        if memcg.ext_policy is not None:
            memcg.ext_policy.folio_removed(folio)
        memcg.uncharge()
