"""Table 4 — no-op cache_ext CPU overhead (fio randread)."""

from repro.experiments import table4

from conftest import run_once

SIZES = (("5GiB", 1280, 8192), ("10GiB", 2560, 8192),
         ("30GiB", 7680, 8192))


def test_table4_noop_overhead(benchmark, record_table):
    result = run_once(benchmark, lambda: table4.run(sizes=SIZES))
    record_table(result)
    overheads = result.column("overhead_pct")
    # Paper: at most 1.7% CPU per I/O; allow a modest margin for the
    # simulator's coarser cost model.
    assert all(o < 4.0 for o in overheads)
    assert all(o > -1.0 for o in overheads)
    # Registry memory matches the paper's §6.3.1 arithmetic (1.2%).
    for mem in result.column("registry_mem_pct"):
        assert abs(mem - 1.17) < 0.05
