"""No-op policy (§6.3.2).

Maintains full cache_ext bookkeeping — an eviction list that every
folio joins, hook dispatch on every event, registry updates — but
proposes no candidates, so the kernel always falls back to its default
eviction path.  This isolates the framework's baseline CPU overhead,
which Table 4 of the paper reports as at most 1.7% per I/O.
"""

from __future__ import annotations

from repro.cache_ext.kfuncs import list_add, list_create
from repro.cache_ext.ops import CacheExtOps
from repro.ebpf.maps import ArrayMap
from repro.ebpf.runtime import bpf_program


def make_noop_policy() -> CacheExtOps:
    """Build a no-op policy: all hooks fire, no decisions are made."""
    bss = ArrayMap(1, name="noop_bss")

    @bpf_program
    def noop_policy_init(memcg):
        lst = list_create(memcg)
        if lst < 0:
            return lst
        bss.update(0, lst)
        return 0

    @bpf_program
    def noop_folio_added(folio):
        # Track the folio like a real policy would, then do nothing.
        list_add(bss.lookup(0), folio, True)

    @bpf_program
    def noop_folio_accessed(folio):
        return 0

    @bpf_program
    def noop_evict_folios(ctx, memcg):
        # Propose nothing; the kernel's eviction fallback handles it.
        return 0

    @bpf_program
    def noop_folio_removed(folio):
        return 0

    return CacheExtOps(
        name="noop",
        policy_init=noop_policy_init,
        evict_folios=noop_evict_folios,
        folio_added=noop_folio_added,
        folio_accessed=noop_folio_accessed,
        folio_removed=noop_folio_removed,
    )
