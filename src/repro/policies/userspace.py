"""Userspace-dispatch strawman (§4.1 / Table 1 of the paper).

Before settling on in-kernel policies, the paper measures the
*best-case* overhead of offloading page-cache decisions to userspace:
eBPF programs attached to existing tracepoints (folio inserted,
accessed, evicted) post one event per page-cache action into a
lockless ring buffer, and userspace merely drains them — no policy
logic at all.  Even this optimistic setup costs up to 20.6% of
application throughput, which is the argument for running cache_ext
policies in the kernel.

This module reproduces that benchmark policy: the three tracepoint
hooks post events, eviction is never customized (the kernel fallback
always runs, so caching behaviour is byte-identical to the baseline),
and a daemon thread created by :func:`spawn_drainer` plays the part of
the userspace consumer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache_ext.ops import CacheExtOps
from repro.ebpf.ringbuf import RingBuffer
from repro.ebpf.runtime import bpf_program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.machine import Machine

EVENT_ADDED = 0
EVENT_ACCESSED = 1
EVENT_REMOVED = 2

#: CPU cost charged to userspace per drained event (parsing + bookkeeping).
DRAIN_COST_US = 0.3
#: How long the drainer sleeps when the buffer is empty.
POLL_INTERVAL_US = 100.0


def make_userspace_dispatch_policy(
        ringbuf_capacity: int = 65536,
        produce_cost_us: float = 1.6) -> CacheExtOps:
    """Build the tracepoint -> ring-buffer notification policy.

    ``produce_cost_us`` is the reserve+commit cost per event; it is the
    knob that turns millions of page-cache events into Table 1's
    throughput degradation.
    """
    events = RingBuffer(capacity=ringbuf_capacity,
                        produce_cost_us=produce_cost_us,
                        name="userspace_dispatch")

    @bpf_program
    def ud_folio_added(folio):
        events.output((EVENT_ADDED, folio.id))

    @bpf_program
    def ud_folio_accessed(folio):
        events.output((EVENT_ACCESSED, folio.id))

    @bpf_program
    def ud_folio_removed(folio):
        events.output((EVENT_REMOVED, folio.id))

    return CacheExtOps(
        name="userspace-dispatch",
        folio_added=ud_folio_added,
        folio_accessed=ud_folio_accessed,
        folio_removed=ud_folio_removed,
        user_maps={"events": events},
    )


def spawn_drainer(machine: "Machine", ops: CacheExtOps,
                  batch: int = 256):
    """Start the userspace consumer as a daemon thread.

    It busy-drains the ring buffer, paying :data:`DRAIN_COST_US` per
    event, and sleeps :data:`POLL_INTERVAL_US` when idle — the
    epoll-driven consumer loop of the real benchmark.
    """
    events: RingBuffer = ops.user_maps["events"]

    def drain_step(thread) -> bool:
        records = events.drain(batch)
        if records:
            thread.advance(DRAIN_COST_US * len(records))
        else:
            thread.advance(POLL_INTERVAL_US)
        return True

    return machine.spawn("userspace-drainer", drain_step, daemon=True)
