"""Parallel experiment runner: fan independent cells across processes.

Every figure/table in the paper is a grid of *independent* simulations
(policy x workload x size).  Each cell builds its own
:class:`~repro.kernel.machine.Machine`, so cells share nothing and can
run in separate worker processes; the merge step then reassembles the
table in the parent.  Three properties make this safe:

* **Determinism** — a cell's payload depends only on its kwargs (all
  RNGs are seeded, time is virtual), so where and when it runs cannot
  change its numbers.  Merges are pure functions of
  ``{cell_id: payload}``; all cross-cell arithmetic (baselines,
  ratios, winners, rank correlations) happens in the parent.  Serial
  and parallel runs therefore produce byte-identical tables, which
  ``tests/test_parallel.py`` asserts for every experiment.
* **Isolation** — workers are forked per cell and exit after one
  payload, so a crashing or wedged cell cannot corrupt its neighbours.
  Failures (crash, timeout, unpicklable payload) are retried serially
  in the parent, making the parallel path strictly a performance
  feature, never a correctness risk.
* **Observability** — per-cell wall-clock is reported (stderr by
  default), and ``trace=True`` attaches a ``cache:lookup`` counter to
  every machine a cell builds, giving trace-derived hit ratios that
  can be compared across execution modes.

Usage::

    python -m repro.experiments.parallel fig6 --jobs 4
    python -m repro.experiments.parallel table5 --quick --serial

or from code::

    spec = fig6.plan(quick=True)
    report = execute(spec, jobs=4)
    print(report.result.format_table())
"""

from __future__ import annotations

import argparse
import multiprocessing
import multiprocessing.connection
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.experiments import harness
from repro.experiments.harness import (CellSpec, ExperimentResult,
                                       ExperimentSpec)

#: How long the scheduler waits on worker pipes before re-checking
#: per-cell deadlines (seconds of real time).
POLL_INTERVAL_S = 0.2

#: Default per-cell timeout.  Cells are minutes at most even at full
#: scale; a worker stuck past this is presumed wedged and its cell is
#: re-run serially.
DEFAULT_TIMEOUT_S = 1800.0


def default_jobs() -> int:
    """Worker count when the caller does not choose one."""
    return max(1, min(os.cpu_count() or 1, 8))


class _LookupCounter:
    """Counts ``cache:lookup`` hit/miss events on every machine a cell
    builds — the trace-derived cross-check of the table's hit ratios."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def attach(self, machine) -> None:
        machine.trace.tracepoint("cache:lookup").subscribe(self._on_lookup)

    def _on_lookup(self, event) -> None:
        if event.data.get("hit"):
            self.hits += 1
        else:
            self.misses += 1

    def counts(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}


def run_cell(cell: CellSpec, trace: bool = False) -> tuple[dict, Optional[dict]]:
    """Execute one cell in this process; returns (payload, trace counts).

    With ``trace=True`` a lookup counter is attached to every machine
    the cell builds (via the :func:`harness.build_machine` observer),
    so tracing-enabled runs exercise the real tracepoint dispatch path.
    """
    if not trace:
        return cell.execute(), None
    counter = _LookupCounter()
    previous = harness.set_cell_observer(counter.attach)
    try:
        payload = cell.execute()
    finally:
        harness.set_cell_observer(previous)
    return payload, counter.counts()


@dataclass
class CellTiming:
    """Wall-clock record for one executed cell."""

    cell_id: str
    wall_s: float
    mode: str  # "worker" | "serial" | "fallback"
    error: Optional[str] = None


@dataclass
class ExecutionReport:
    """Everything one :func:`execute` call produced."""

    result: ExperimentResult
    timings: list = field(default_factory=list)
    trace: dict = field(default_factory=dict)
    #: cell_ids that failed in a worker and were re-run serially.
    fallbacks: list = field(default_factory=list)
    wall_s: float = 0.0
    jobs: int = 1

    def format_timings(self) -> str:
        lines = [f"[{len(self.timings)} cells, jobs={self.jobs}, "
                 f"wall {self.wall_s:.1f}s]"]
        for t in sorted(self.timings, key=lambda t: -t.wall_s):
            note = f"  ({t.mode})" if t.mode != "worker" else ""
            lines.append(f"  {t.cell_id:<32} {t.wall_s:8.2f}s{note}")
        if self.fallbacks:
            lines.append(f"  serial fallbacks: {', '.join(self.fallbacks)}")
        return "\n".join(lines)


def _worker_main(conn, cell: CellSpec, trace: bool) -> None:
    """Child entry: run one cell, send one message, exit."""
    try:
        payload, counts = run_cell(cell, trace=trace)
        conn.send(("ok", payload, counts))
    except BaseException as exc:  # report, don't propagate: the parent
        try:                      # decides how to retry
            conn.send(("err", f"{type(exc).__name__}: {exc}", None))
        except Exception:
            pass
    finally:
        conn.close()


def _execute_serial(spec: ExperimentSpec, trace: bool,
                    report: ExecutionReport) -> dict:
    payloads = {}
    for cell in spec.cells:
        t0 = time.perf_counter()
        payload, counts = run_cell(cell, trace=trace)
        report.timings.append(
            CellTiming(cell.cell_id, time.perf_counter() - t0, "serial"))
        payloads[cell.cell_id] = payload
        if counts is not None:
            report.trace[cell.cell_id] = counts
    return payloads


def _execute_parallel(spec: ExperimentSpec, jobs: int, timeout_s: float,
                      trace: bool, report: ExecutionReport) -> dict:
    ctx = multiprocessing.get_context("fork")
    pending = list(spec.cells)
    running: dict = {}  # parent_conn -> (cell, process, started_at)
    payloads: dict = {}
    failed: list[tuple[CellSpec, str]] = []

    def reap(conn, cell, proc, started) -> None:
        wall = time.perf_counter() - started
        try:
            status, value, counts = conn.recv()
        except (EOFError, OSError):
            status, value, counts = "err", "worker died without a result", None
        conn.close()
        proc.join()
        if status == "ok":
            payloads[cell.cell_id] = value
            report.timings.append(CellTiming(cell.cell_id, wall, "worker"))
            if counts is not None:
                report.trace[cell.cell_id] = counts
        else:
            failed.append((cell, value))

    while pending or running:
        while pending and len(running) < jobs:
            cell = pending.pop(0)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, cell, trace),
                               name=f"cell-{cell.cell_id}")
            proc.start()
            child_conn.close()
            running[parent_conn] = (cell, proc, time.perf_counter())
        ready = multiprocessing.connection.wait(
            list(running), timeout=POLL_INTERVAL_S)
        for conn in ready:
            cell, proc, started = running.pop(conn)
            reap(conn, cell, proc, started)
        now = time.perf_counter()
        for conn in [c for c, (_, _, t0) in running.items()
                     if now - t0 > timeout_s]:
            cell, proc, started = running.pop(conn)
            proc.terminate()
            proc.join()
            conn.close()
            failed.append((cell, f"timed out after {timeout_s:.0f}s"))

    # Crash/timeout fallback: re-run failed cells serially, in plan
    # order, in this process — determinism makes the retry exact.
    order = {cell.cell_id: i for i, cell in enumerate(spec.cells)}
    for cell, error in sorted(failed, key=lambda f: order[f[0].cell_id]):
        t0 = time.perf_counter()
        payload, counts = run_cell(cell, trace=trace)
        report.timings.append(
            CellTiming(cell.cell_id, time.perf_counter() - t0,
                       "fallback", error=error))
        report.fallbacks.append(cell.cell_id)
        payloads[cell.cell_id] = payload
        if counts is not None:
            report.trace[cell.cell_id] = counts
    return payloads


def execute(spec: ExperimentSpec, jobs: Optional[int] = None,
            serial: bool = False, timeout_s: float = DEFAULT_TIMEOUT_S,
            trace: bool = False) -> ExecutionReport:
    """Run every cell of ``spec`` and merge; returns the full report.

    ``serial=True`` (or ``jobs=1``, or a platform without ``fork``)
    runs cells in-process in plan order — the escape hatch and the
    reference behaviour the parallel path must reproduce byte for
    byte.
    """
    if jobs is None:
        jobs = default_jobs()
    can_fork = "fork" in multiprocessing.get_all_start_methods()
    report = ExecutionReport(result=None, jobs=1 if serial else jobs)
    t0 = time.perf_counter()
    if spec.prepare is not None:
        # Warm shared caches (pre-generated workload streams) in the
        # parent: serial cells reuse them directly; forked workers
        # inherit them copy-on-write instead of regenerating per cell.
        spec.prepare()
    if serial or jobs <= 1 or len(spec.cells) <= 1 or not can_fork:
        report.jobs = 1
        payloads = _execute_serial(spec, trace, report)
    else:
        payloads = _execute_parallel(spec, jobs, timeout_s, trace, report)
    report.result = spec.merge(spec.meta, payloads)
    report.wall_s = time.perf_counter() - t0
    return report


def run_spec(spec: ExperimentSpec, **kwargs) -> ExperimentResult:
    """Convenience wrapper returning just the merged table."""
    return execute(spec, **kwargs).result


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _load_experiment(name: str):
    import importlib
    module = importlib.import_module(f"repro.experiments.{name}")
    if not hasattr(module, "plan"):
        raise SystemExit(f"experiment {name!r} has no plan()")
    return module


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run one experiment's cells across worker processes")
    parser.add_argument("experiment",
                        help="experiment module name (fig6, table5, ...)")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes (default: min(cpus, 8))")
    parser.add_argument("--serial", action="store_true",
                        help="run cells in-process, in order")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes (CI smoke)")
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT_S,
                        help="per-cell timeout in seconds")
    parser.add_argument("--trace", action="store_true",
                        help="attach cache:lookup counters to every cell")
    parser.add_argument("-o", "--output", default=None,
                        help="also write the table to this file")
    args = parser.parse_args(argv)

    module = _load_experiment(args.experiment)
    spec = module.plan(quick=args.quick)
    report = execute(spec, jobs=args.jobs, serial=args.serial,
                     timeout_s=args.timeout, trace=args.trace)
    table = report.result.format_table()
    print(table)
    if args.trace:
        for cell_id in sorted(report.trace):
            counts = report.trace[cell_id]
            total = counts["hits"] + counts["misses"]
            ratio = counts["hits"] / total if total else 0.0
            print(f"trace {cell_id}: {counts['hits']}/{total} "
                  f"lookups hit ({ratio:.4f})")
    print(report.format_timings(), file=sys.stderr)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(table + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
