"""cache_ext reproduction: customizable page-cache eviction with eBPF.

A full-system Python reproduction of *cache_ext: Customizing the Page
Cache with eBPF* (SOSP 2025), built on a simulated Linux kernel
substrate.  Public API tour::

    from repro import api
    from repro.policies import make_lfu_policy

    machine = api.MachineConfig(cgroups=(("app", 1024),)).build()
    load_policy(machine, machine.cgroup("app"), make_lfu_policy())

    report = api.run("fig6", quick=True, mode="replay")
    print(report.result.format_table())

Subpackages:

* :mod:`repro.api` — the one-call facade (:class:`~repro.api.
  MachineConfig`, :func:`~repro.api.run`);

* :mod:`repro.sim` — virtual-time engine (threads, block device);
* :mod:`repro.kernel` — page cache, cgroups, default LRU, MGLRU, VFS;
* :mod:`repro.ebpf` — maps, ring buffers, verifier, struct_ops;
* :mod:`repro.cache_ext` — the paper's framework (eviction lists,
  kfuncs, folio registry, loader, fallback);
* :mod:`repro.policies` — the paper's eight policies;
* :mod:`repro.apps` — LSM KV store, file search, fio;
* :mod:`repro.workloads` — YCSB, Twitter profiles, GET-SCAN;
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.cache_ext import CacheExtOps, EvictionCtx, load_policy, \
    unload_policy
from repro.kernel import FAdvice, Machine, MemCgroup

__version__ = "1.0.0"

__all__ = [
    "Machine", "MemCgroup", "FAdvice",
    "CacheExtOps", "EvictionCtx", "load_policy", "unload_policy",
    "__version__",
]
