"""Trace-driven cache simulation.

The paper's closing pitch is that "any publicly available policy can
be used by anyone, lowering the barrier to ... experimenting with
eviction policies on different workloads" (§1).  This module is that
workflow as a library call and a CLI: feed it an access trace — pairs
of ``(file, page)`` or just page numbers — and it replays the trace
against any set of policies on a machine sized to your cache budget.

Trace format (text, one access per line)::

    <file-id> <page-index> [r|w]

Lines starting with ``#`` are ignored.  A bare integer per line is
treated as ``0 <page> r``.

CLI::

    python -m repro.tools.cachesim TRACE --cache-pages 1024 \
        --policies default,lfu,s3fifo,sieve
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Iterable, Optional, TextIO

from repro.cache_ext import load_policy
from repro.kernel import Machine
from repro.policies import EXTENSION_POLICIES, GENERIC_POLICIES
from repro.policies.lhd import init_lhd, make_lhd_policy


@dataclass
class TraceReport:
    """Replay outcome for one policy."""

    policy: str
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_pages: int = 0
    elapsed_ms: float = 0.0
    notes: list = field(default_factory=list)

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


def parse_trace(lines: Iterable[str]) -> list[tuple]:
    """Parse the text trace format into (file_id, page, is_write)."""
    out = []
    for lineno, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        try:
            if len(parts) == 1:
                out.append((0, int(parts[0]), False))
            else:
                is_write = len(parts) > 2 and parts[2].lower() == "w"
                out.append((int(parts[0]), int(parts[1]), is_write))
        except ValueError as exc:
            raise ValueError(f"trace line {lineno}: {line!r}") from exc
    return out


def _attach(machine: Machine, cgroup, policy: str,
            cache_pages: int) -> None:
    if policy in ("default", "mglru"):
        return
    map_entries = max(4 * cache_pages, 1024)
    if policy == "lhd":
        ops = make_lhd_policy(map_entries=map_entries)
        machine.attach(cgroup, ops)
        init_lhd(machine, ops)
        return
    factories = dict(GENERIC_POLICIES)
    factories.update(EXTENSION_POLICIES)
    if policy not in factories:
        raise ValueError(
            f"unknown policy {policy!r}; choose from: default, mglru, "
            f"lhd, {', '.join(sorted(factories))}")
    try:
        ops = factories[policy](map_entries=map_entries)
    except TypeError:
        ops = factories[policy]()
    load_policy(machine, cgroup, ops)


def replay_trace(trace: list[tuple], policy: str,
                 cache_pages: int, readahead: bool = False) -> TraceReport:
    """Replay one parsed trace against one policy."""
    if cache_pages <= 0:
        raise ValueError("cache_pages must be positive")
    kernel = "mglru" if policy == "mglru" else "default"
    machine = Machine(kernel_policy=kernel)
    cgroup = machine.new_cgroup("trace", limit_pages=cache_pages)
    _attach(machine, cgroup, policy, cache_pages)

    # Materialize the trace's file universe.
    files = {}
    for file_id, page, _w in trace:
        f = files.get(file_id)
        if f is None:
            f = machine.fs.create(f"trace/file-{file_id}")
            f.ra_enabled = readahead
            files[file_id] = f
        if page >= f.npages:
            for idx in range(f.npages, page + 1):
                f.store[idx] = idx
            f.npages = page + 1

    def step(thread, it=iter(trace)):
        access = next(it, None)
        if access is None:
            return False
        file_id, page, is_write = access
        if is_write:
            machine.fs.write_page(files[file_id], page, "w")
        else:
            machine.fs.read_page(files[file_id], page)
        return True

    thread = machine.spawn("replay", step, cgroup=cgroup)
    machine.run()

    report = TraceReport(policy=policy)
    report.accesses = len(trace)
    report.hits = cgroup.stats.hits
    report.misses = cgroup.stats.misses
    report.evictions = cgroup.stats.evictions
    report.disk_pages = machine.disk.stats.total_pages
    report.elapsed_ms = thread.clock_us / 1000.0
    if cgroup.stats.ext_policy_faults:
        report.notes.append("policy was removed by the watchdog")
    return report


def simulate_policies(trace: list[tuple], policies: Iterable[str],
                      cache_pages: int,
                      readahead: bool = False) -> list[TraceReport]:
    """Replay the trace against each policy; returns one report each."""
    return [replay_trace(trace, policy, cache_pages, readahead)
            for policy in policies]


def format_reports(reports: list[TraceReport]) -> str:
    lines = [f"{'policy':>10s}  {'hit%':>7s}  {'misses':>9s}  "
             f"{'evictions':>9s}  {'disk pages':>10s}  {'time (ms)':>10s}"]
    for r in sorted(reports, key=lambda r: -r.hit_ratio):
        lines.append(
            f"{r.policy:>10s}  {100 * r.hit_ratio:6.2f}%  "
            f"{r.misses:9d}  {r.evictions:9d}  {r.disk_pages:10d}  "
            f"{r.elapsed_ms:10.2f}"
            + ("  (" + "; ".join(r.notes) + ")" if r.notes else ""))
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Replay an access trace against cache_ext policies")
    parser.add_argument("trace", help="trace file ('-' for stdin)")
    parser.add_argument("--cache-pages", type=int, default=1024)
    parser.add_argument("--policies", default="default,lfu,s3fifo",
                        help="comma-separated policy names")
    parser.add_argument("--readahead", action="store_true",
                        help="enable kernel readahead during replay")
    args = parser.parse_args(argv)

    import sys
    source: TextIO
    if args.trace == "-":
        source = sys.stdin
        trace = parse_trace(source)
    else:
        with open(args.trace) as source:
            trace = parse_trace(source)
    if not trace:
        parser.error("empty trace")
    reports = simulate_policies(trace, args.policies.split(","),
                                args.cache_pages, args.readahead)
    print(format_reports(reports))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
