"""Typed metrics snapshots: one call instead of field-poking.

Before this module, every experiment dug into ``cgroup.stats.<field>``,
``machine.disk.stats`` and the framework object separately — exactly
the ad-hoc workflow the paper was forced into when it used disk access
as a hit-rate proxy (§6.1.1).  :func:`snapshot_machine` /
:func:`snapshot_cgroup` (surfaced as ``Machine.metrics()`` and
``MemCgroup.metrics()``) collect the whole stack into one immutable
snapshot: cache counters, per-cgroup block I/O, and the attached
policy's health (kfunc errors, watchdog detaches) that previously
failed silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.cgroup import MemCgroup
    from repro.kernel.machine import Machine


@dataclass(frozen=True)
class PolicyMetrics:
    """Health of one attached cache_ext policy."""

    name: str
    attached: bool
    kfunc_errors: int
    registry_folios: int
    listed_folios: int
    nr_lists: int
    #: Composite health in [0, 1] (kfunc error rate, eviction
    #: under-delivery, budget overruns); see
    #: :meth:`~repro.cache_ext.framework.CacheExtPolicy.health_score`.
    health: float = 1.0
    hook_dispatches: int = 0
    candidate_requests: int = 0
    candidates_delivered: int = 0
    budget_overruns: int = 0


@dataclass(frozen=True)
class CgroupMetrics:
    """Everything one cgroup's workload wants to know, in one object."""

    name: str
    id: int
    charged_pages: int
    limit_pages: Optional[int]
    hit_ratio: float
    #: Full :meth:`~repro.kernel.stats.CacheStats.snapshot` dict.
    stats: dict = field(repr=False)
    #: Block I/O issued by this cgroup's threads.
    io_read_pages: int = 0
    io_write_pages: int = 0
    policy: Optional[PolicyMetrics] = None

    @property
    def io_total_pages(self) -> int:
        return self.io_read_pages + self.io_write_pages

    @property
    def hits(self) -> int:
        return self.stats["hits"]

    @property
    def lookups(self) -> int:
        return self.stats["lookups"]


@dataclass(frozen=True)
class MachineMetrics:
    """Machine-wide snapshot plus one :class:`CgroupMetrics` each."""

    now_us: float
    hit_ratio: float
    stats: dict = field(repr=False)
    disk: dict = field(repr=False)
    cgroups: dict = field(repr=False)

    def cgroup(self, name: str) -> CgroupMetrics:
        return self.cgroups[name]


def _policy_metrics(memcg: "MemCgroup") -> Optional[PolicyMetrics]:
    policy = memcg.ext_policy
    if policy is None:
        return None
    health = policy.health_score() if hasattr(policy, "health_score") \
        else 1.0
    dispatches = policy.hook_dispatches() \
        if hasattr(policy, "hook_dispatches") else 0
    return PolicyMetrics(
        name=policy.name,
        attached=bool(getattr(policy, "attached", True)),
        kfunc_errors=getattr(policy, "kfunc_errors", 0),
        registry_folios=len(getattr(policy, "registry", ())),
        listed_folios=(policy.nr_listed()
                       if hasattr(policy, "nr_listed") else 0),
        nr_lists=len(getattr(policy, "lists", ())),
        health=health,
        hook_dispatches=dispatches,
        candidate_requests=getattr(policy, "candidate_requests", 0),
        candidates_delivered=getattr(policy, "candidates_delivered", 0),
        budget_overruns=getattr(policy, "budget_overruns", 0))


def snapshot_cgroup(machine: "Machine",
                    memcg: "MemCgroup") -> CgroupMetrics:
    """Build one cgroup's snapshot (``MemCgroup.metrics()``)."""
    io = machine.disk.cgroup_io(memcg.id)
    return CgroupMetrics(
        name=memcg.name,
        id=memcg.id,
        charged_pages=memcg.charged_pages,
        limit_pages=memcg.limit_pages,
        hit_ratio=memcg.stats.hit_ratio,
        stats=memcg.stats.snapshot(),
        io_read_pages=io.read_pages,
        io_write_pages=io.write_pages,
        policy=_policy_metrics(memcg))


def snapshot_machine(machine: "Machine") -> MachineMetrics:
    """Build the machine-wide snapshot (``Machine.metrics()``)."""
    disk = machine.disk.stats
    return MachineMetrics(
        now_us=machine.engine.now_us,
        hit_ratio=machine.page_cache.stats.hit_ratio,
        stats=machine.page_cache.stats.snapshot(),
        disk={"reads": disk.reads, "writes": disk.writes,
              "read_pages": disk.read_pages,
              "write_pages": disk.write_pages,
              "total_pages": disk.total_pages,
              "busy_us": disk.busy_us,
              "errors": disk.errors},
        cgroups={memcg.name: snapshot_cgroup(machine, memcg)
                 for memcg in machine.cgroups()})
