"""funclatency: per-hook latency histograms for cache_ext programs.

The BCC ``funclatency`` tool histograms the latency of one traced
function; this is the same view for the eBPF policy runtime: one log2
histogram per ``(policy, hook slot)`` of the CPU time each hook
invocation charged — dispatch plus every kfunc the program ran —
computed from ``cache_ext:hook_exit`` events.

Hook costs are tens of *nano*seconds at the configured cost model
(``bpf_hook_us`` = 0.03 µs), so histograms are kept in nanoseconds —
a µs histogram would collapse every invocation into bucket zero.

Offline against a recorded trace, or live against a fig6-sized cell::

    python -m repro.tools.funclatency run.jsonl
    python -m repro.tools.funclatency --live --policy lfu --workload A

Live mode enables the hook tracepoints, which takes the framework off
its inlined fast paths — virtual results are unchanged (the guard
asserts that), only host-time cost grows.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Optional

from repro.obs.collectors import Collector, Histogram
from repro.obs.trace import TraceEvent, TraceSession


class FuncLatencyCollector(Collector):
    """Per-(policy, slot) histograms of hook CPU time in nanoseconds."""

    tracepoints = ("cache_ext:hook_exit",)

    def __init__(self) -> None:
        #: (policy, slot) -> Histogram of per-invocation ns.
        self.per_hook: dict[tuple, Histogram] = {}

    def handle(self, event: TraceEvent) -> None:
        key = (event.data.get("policy", "?"), event.data.get("slot", "?"))
        hist = self.per_hook.get(key)
        if hist is None:
            hist = self.per_hook[key] = Histogram()
        hist.record(event.data.get("cpu_us", 0.0) * 1000.0)

    def replay(self, events: Iterable[TraceEvent]) -> "FuncLatencyCollector":
        for event in events:
            if event.name == "cache_ext:hook_exit":
                self.handle(event)
        return self


def format_funclatency(collector: FuncLatencyCollector) -> str:
    if not collector.per_hook:
        return ("(no hook events observed — was the trace recorded with "
                "cache_ext:* enabled?)")
    chunks = []
    for key in sorted(collector.per_hook):
        policy, slot = key
        hist = collector.per_hook[key]
        chunks.append(f"policy {policy}, hook {slot}: "
                      f"{hist.count} calls, mean {hist.mean:.0f} ns\n"
                      + hist.format())
    return "\n\n".join(chunks)


def run_live(policy: str, workload: str) -> FuncLatencyCollector:
    """Run one fig6-sized cell with the collector attached."""
    from repro.obs.guard import run_cell
    collector = FuncLatencyCollector()
    run_cell(policy, workload, collectors=[collector])
    return collector


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Per-(policy, hook) latency histograms from "
                    "cache_ext:hook_exit events")
    parser.add_argument("trace", nargs="?",
                        help="JSONL trace file ('-' for stdin)")
    parser.add_argument("--live", action="store_true",
                        help="run a quick fig6-sized cell instead of "
                             "reading a trace")
    parser.add_argument("--policy", default="mru",
                        help="policy for --live (default: mru)")
    parser.add_argument("--workload", default="C",
                        help="YCSB workload for --live (default: C)")
    args = parser.parse_args(argv)

    if args.live:
        collector = run_live(args.policy, args.workload)
    else:
        if not args.trace:
            parser.error("a trace file is required (or --live)")
        try:
            if args.trace == "-":
                events = TraceSession.load(sys.stdin)
            else:
                events = TraceSession.load(args.trace)
        except (OSError, ValueError) as exc:
            print(f"funclatency: {exc}", file=sys.stderr)
            return 1
        collector = FuncLatencyCollector().replay(events)
    print(format_funclatency(collector))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        raise SystemExit(0)
