"""Intrusive-list tests, including a hypothesis model check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.list import IntrusiveList, ListNode


class TestIntrusiveListBasics:
    def test_empty(self):
        lst = IntrusiveList()
        assert len(lst) == 0
        assert lst.empty
        assert lst.head() is None
        assert lst.tail() is None
        assert lst.pop_head() is None
        assert lst.pop_tail() is None

    def test_add_head_tail_order(self):
        lst = IntrusiveList()
        a, b, c = ListNode("a"), ListNode("b"), ListNode("c")
        lst.add_tail(a)
        lst.add_tail(b)
        lst.add_head(c)
        assert lst.items() == ["c", "a", "b"]

    def test_remove_middle(self):
        lst = IntrusiveList()
        nodes = [ListNode(i) for i in range(5)]
        for n in nodes:
            lst.add_tail(n)
        lst.remove(nodes[2])
        assert lst.items() == [0, 1, 3, 4]
        assert not nodes[2].linked

    def test_double_add_rejected(self):
        lst = IntrusiveList()
        n = ListNode(1)
        lst.add_tail(n)
        with pytest.raises(RuntimeError):
            lst.add_tail(n)

    def test_remove_foreign_node_rejected(self):
        a, b = IntrusiveList(), IntrusiveList()
        n = ListNode(1)
        a.add_tail(n)
        with pytest.raises(RuntimeError):
            b.remove(n)

    def test_move_to_tail_rotates(self):
        lst = IntrusiveList()
        nodes = [ListNode(i) for i in range(3)]
        for n in nodes:
            lst.add_tail(n)
        lst.move_to_tail(nodes[0])
        assert lst.items() == [1, 2, 0]

    def test_move_across_lists(self):
        a, b = IntrusiveList("a"), IntrusiveList("b")
        n = ListNode("x")
        a.add_tail(n)
        b.move_to_tail(n)
        assert a.empty
        assert b.items() == ["x"]
        assert n.owner is b

    def test_move_to_head(self):
        lst = IntrusiveList()
        nodes = [ListNode(i) for i in range(3)]
        for n in nodes:
            lst.add_tail(n)
        lst.move_to_head(nodes[2])
        assert lst.items() == [2, 0, 1]

    def test_pop_head_fifo(self):
        lst = IntrusiveList()
        for i in range(4):
            lst.add_tail(ListNode(i))
        assert [lst.pop_head().item for _ in range(4)] == [0, 1, 2, 3]

    def test_iteration_tolerates_current_removal(self):
        lst = IntrusiveList()
        nodes = [ListNode(i) for i in range(5)]
        for n in nodes:
            lst.add_tail(n)
        seen = []
        for node in lst.iter_from_head():
            seen.append(node.item)
            if node.item % 2 == 0:
                lst.remove(node)
        assert seen == [0, 1, 2, 3, 4]
        assert lst.items() == [1, 3]


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(
    st.sampled_from(["add_tail", "add_head", "pop_head", "pop_tail",
                     "rotate"]),
    st.integers(min_value=0, max_value=9)), max_size=60))
def test_list_matches_model(ops):
    """The intrusive list behaves like a plain Python list model."""
    lst = IntrusiveList()
    model = []
    nodes = {}
    counter = [0]
    for op, _arg in ops:
        if op == "add_tail":
            item = counter[0]
            counter[0] += 1
            node = ListNode(item)
            nodes[item] = node
            lst.add_tail(node)
            model.append(item)
        elif op == "add_head":
            item = counter[0]
            counter[0] += 1
            node = ListNode(item)
            nodes[item] = node
            lst.add_head(node)
            model.insert(0, item)
        elif op == "pop_head":
            node = lst.pop_head()
            if model:
                assert node.item == model.pop(0)
            else:
                assert node is None
        elif op == "pop_tail":
            node = lst.pop_tail()
            if model:
                assert node.item == model.pop()
            else:
                assert node is None
        elif op == "rotate" and model:
            item = model[0]
            lst.move_to_tail(nodes[item])
            model.append(model.pop(0))
        lst.check_consistency()
        assert lst.items() == model
        assert len(lst) == len(model)
