"""Trace-replay fast path: exact equality with the full engine.

The replay contract (ISSUE: "bit-identical, not approximately equal")
is enforced here by running the same cell twice — once on the
reference engine, once with ``mode="replay"`` — and requiring the
*entire payload dict* to compare equal, floats included.  Coverage
spans the three stream families (YCSB, Twitter clusters, GET-SCAN)
and every attachable policy, plus ARC and SIEVE driven directly.

Scales are kept small: equality at any scale exercises the same code
paths, and the full-scale cross-check lives in the benchmark suite.
"""

import warnings

import pytest

from repro import api, load_policy
from repro.experiments import admission, fig6, fig8, fig10
from repro.experiments.harness import GENERIC_POLICY_NAMES
from repro.faults.plan import FaultPlan
from repro.kernel.machine import Machine
from repro.policies.arc import make_arc_policy
from repro.policies.sieve import make_sieve_policy
from repro.replay import ReplayEngine, enable_replay, replay_counters

# One small YCSB scale reused by the policy sweep below.
YCSB_SCALE = dict(nkeys=2000, cgroup_pages=96, nops=800,
                  warmup_ops=400, nthreads=2, zipf_theta=1.1)


def both_modes(cell_fn, **kwargs):
    full = cell_fn(mode="full", **kwargs)
    replay = cell_fn(mode="replay", **kwargs)
    return full, replay


class TestYcsbEquality:
    @pytest.mark.parametrize("policy", GENERIC_POLICY_NAMES)
    def test_policy_payloads_bit_identical(self, policy):
        full, replay = both_modes(fig6.cell, policy=policy,
                                  workload="B", **YCSB_SCALE)
        assert full == replay

    @pytest.mark.parametrize("workload", ("A", "E", "uniform-rw"))
    def test_workload_payloads_bit_identical(self, workload):
        # E is scan-heavy (bulk sequential I/O), uniform-rw exercises
        # writeback; together with B above they cover every YCSB op
        # mix the sweep uses.
        full, replay = both_modes(fig6.cell, policy="lfu",
                                  workload=workload, **YCSB_SCALE)
        assert full == replay


class TestTwitterEquality:
    @pytest.mark.parametrize("policy", ("default", "lfu", "lhd"))
    def test_cluster_payloads_bit_identical(self, policy):
        full, replay = both_modes(
            fig8.cell, policy=policy, cluster=34, nkeys=1500,
            cgroup_pages=80, nops=1200, warmup_ops=400)
        assert full == replay


class TestGetScanEquality:
    @pytest.mark.parametrize("label,policy,fadvise_mode", (
        ("default", "default", None),
        ("cache_ext-get-scan", "get-scan", None),
    ))
    def test_getscan_payloads_bit_identical(self, label, policy,
                                            fadvise_mode):
        full, replay = both_modes(
            fig10.cell, label=label, policy=policy,
            fadvise_mode=fadvise_mode, nkeys=1500, cgroup_pages=96,
            n_gets=600, scan_len=300, get_threads=2, scan_threads=1)
        assert full == replay


class TestAdmissionEquality:
    @pytest.mark.parametrize("filtered", (False, True))
    def test_admission_payloads_bit_identical(self, filtered):
        full, replay = both_modes(
            admission.cell, filtered=filtered, nkeys=1500,
            cgroup_pages=96, nops=800, warmup_ops=200, nthreads=2)
        assert full == replay


def run_direct(ops_factory, replay: bool) -> dict:
    """ARC and SIEVE are not in the harness registry; drive them on a
    bare machine with a mixed hot/scan read pattern."""
    machine = Machine()
    if replay:
        enable_replay(machine)
    cg = machine.new_cgroup("app", limit_pages=48)
    f = machine.fs.create("data")
    for i in range(256):
        f.store[i] = i
    f.npages = 256
    f.ra_enabled = False
    load_policy(machine, cg, ops_factory())

    def step(thread, state={"i": 0}):
        i = state["i"]
        if i >= 4000:
            return False
        # Deterministic mix: hot set + striding scan.
        machine.fs.read_page(f, (i * 7) % 24 if i % 3 else i % 256)
        state["i"] = i + 1
        return True

    machine.spawn("app", step, cgroup=cg)
    machine.run()
    return replay_counters(machine)


class TestDirectPolicies:
    @pytest.mark.parametrize("factory", (make_arc_policy,
                                         make_sieve_policy),
                             ids=("arc", "sieve"))
    def test_counters_bit_identical(self, factory):
        full = run_direct(factory, replay=False)
        fast = run_direct(factory, replay=True)
        assert full == fast
        assert full["lookups"] > 0 and full["evictions"] > 0


class TestDeterminism:
    def test_same_seed_same_counters(self):
        a = fig6.cell(policy="s3fifo", workload="A", mode="replay",
                      **YCSB_SCALE)
        b = fig6.cell(policy="s3fifo", workload="A", mode="replay",
                      **YCSB_SCALE)
        assert a == b

    def test_serial_equals_parallel(self):
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork on this platform")
        spec = fig6.plan(policies=("fifo", "lfu"), workloads=("B",),
                         scale=YCSB_SCALE)
        serial = api.run(spec, mode="replay")
        parallel = api.run(fig6.plan(policies=("fifo", "lfu"),
                                     workloads=("B",),
                                     scale=YCSB_SCALE),
                           mode="replay", jobs=2)
        assert serial.result.rows == parallel.result.rows


class TestReplayRefusals:
    def test_refuses_after_spawn(self):
        machine = Machine()
        machine.spawn("t", lambda thread: False)
        with pytest.raises(ValueError, match="before any thread"):
            enable_replay(machine)

    def test_refuses_armed_faults(self):
        machine = Machine()
        machine.arm_faults(FaultPlan(seed=3))
        with pytest.raises(ValueError, match="incompatible"):
            enable_replay(machine)

    def test_refuses_hook_budget(self):
        machine = Machine()
        machine.hook_budget_us = 50.0
        with pytest.raises(ValueError, match="incompatible"):
            enable_replay(machine)

    def test_arm_faults_refused_on_replay_machine(self):
        machine = enable_replay(Machine())
        with pytest.raises(ValueError, match="replay-mode machine"):
            machine.arm_faults(FaultPlan(seed=3))

    def test_enable_replay_idempotent(self):
        machine = enable_replay(Machine())
        assert enable_replay(machine) is machine
        assert isinstance(machine.engine, ReplayEngine)

    def test_bounded_run_still_works(self):
        # Windowed runs delegate to the full loop on a replay machine.
        machine = enable_replay(Machine())
        ticks = []

        def step(thread):
            ticks.append(thread.clock_us)
            thread.advance(10.0)
            return True

        machine.spawn("t", step)
        machine.run(until_us=100.0)
        assert machine.engine.now_us <= 110.0
        assert len(ticks) >= 5


class TestApiFacade:
    def test_machine_config_knobs_apply(self):
        config = api.MachineConfig(
            kernel_policy="mglru",
            disk={"read_us": 50.0, "channels": 4},
            bulk_io_enabled=False, burst_enabled=False,
            cgroups=(("app", 128), ("side", 64)))
        machine = config.build()
        assert machine.fs.bulk_io_enabled is False
        assert machine.engine.burst_enabled is False
        assert machine.disk.read_us == 50.0
        assert machine.cgroup("app").limit_pages == 128
        assert machine.cgroup("side").limit_pages == 64
        assert machine.replay_mode is False

    def test_machine_config_replay_mode(self):
        machine = api.MachineConfig(mode="replay").build()
        assert machine.replay_mode is True
        assert isinstance(machine.engine, ReplayEngine)

    def test_machine_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown machine mode"):
            api.MachineConfig(mode="turbo").build()

    def test_machine_config_is_reusable(self):
        config = api.MachineConfig(cgroups=(("app", 32),))
        m1, m2 = config.build(), config.build()
        assert m1 is not m2
        assert m1.cgroup("app") is not m2.cgroup("app")

    def test_run_by_name_end_to_end(self):
        # Name resolution through repro.experiments.<name>.plan().
        report = api.run("table3")
        assert report.result.rows

    def test_run_spec_with_policy_filter(self):
        spec = fig6.plan(policies=("fifo", "lfu"), workloads=("B",),
                         scale=YCSB_SCALE)
        report = api.run(spec, policy="lfu", mode="replay")
        rows = report.result.rows
        assert len(rows) == 1
        assert "lfu" in rows[0][0]

    def test_run_unknown_policy_filter_raises(self):
        spec = fig6.plan(policies=("fifo",), workloads=("B",),
                         scale=YCSB_SCALE)
        with pytest.raises(ValueError, match="no cell"):
            api.run(spec, policy="nonexistent")

    def test_faults_with_replay_raises(self):
        spec = fig6.plan(policies=("fifo",), workloads=("B",),
                         scale=YCSB_SCALE)
        with pytest.raises(ValueError, match="full engine"):
            api.run(spec, mode="replay", faults=FaultPlan(seed=1))

    def test_faults_with_trace_raises(self):
        spec = fig6.plan(policies=("fifo",), workloads=("B",),
                         scale=YCSB_SCALE)
        with pytest.raises(ValueError, match="observer"):
            api.run(spec, faults=FaultPlan(seed=1), trace=True)

    def test_replay_mode_matches_full_through_facade(self):
        spec = lambda: fig6.plan(policies=("s3fifo",), workloads=("B",),
                                 scale=YCSB_SCALE)
        full = api.run(spec(), mode="full")
        fast = api.run(spec(), mode="replay")
        assert full.result.rows == fast.result.rows


class TestDeprecatedShims:
    def test_attach_lhd_warns_and_works(self):
        from repro.policies.lhd import attach_lhd
        machine = Machine()
        cg = machine.new_cgroup("app", limit_pages=64)
        with pytest.warns(DeprecationWarning, match="attach_lhd"):
            ops = attach_lhd(machine, cg, map_entries=512)
        assert cg.ext_policy is not None
        assert ops.name == "lhd"

    def test_new_style_attach_does_not_warn(self):
        from repro.policies.lhd import init_lhd, make_lhd_policy
        machine = Machine()
        cg = machine.new_cgroup("app", limit_pages=64)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ops = make_lhd_policy(map_entries=512)
            machine.attach(cg, ops)
            init_lhd(machine, ops)
        assert cg.ext_policy is not None
