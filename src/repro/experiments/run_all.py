"""Regenerate the paper's entire evaluation in one command.

Runs every table/figure module (full scale by default) and writes the
formatted tables to stdout and, optionally, a results file.  Each
experiment's independent cells are fanned across worker processes by
:mod:`repro.experiments.parallel`; ``--serial`` restores the in-process
reference path (the output tables are byte-identical either way)::

    python -m repro.experiments.run_all                 # full, parallel
    python -m repro.experiments.run_all --jobs 4        # explicit width
    python -m repro.experiments.run_all --serial        # escape hatch
    python -m repro.experiments.run_all --quick         # CI smoke
    python -m repro.experiments.run_all -o results.txt
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (admission, fig6, fig7, fig8, fig9, fig10,
                               fig11, table1, table3, table4, table5)
from repro.experiments.parallel import default_jobs

#: Execution order: cheap first, so early output appears quickly.
MODULES = (table3, table4, fig9, admission, table1, fig10, fig11, fig7,
           fig8, table5, fig6)


def run_all(quick: bool = False, out_path: str | None = None,
            jobs: int | None = None) -> int:
    """``jobs=None`` runs every experiment serially in-process."""
    lines: list[str] = []
    failures = 0
    for mod in MODULES:
        started = time.time()
        name = mod.__name__.rsplit(".", 1)[-1]
        try:
            result = mod.run(quick=quick, jobs=jobs)
            block = result.format_table()
        except Exception as exc:  # keep going; report at the end
            failures += 1
            block = f"== {name} FAILED ==\n{type(exc).__name__}: {exc}"
        block += f"\n[{name}: {time.time() - started:.1f}s]\n"
        print(block, flush=True)
        lines.append(block)
    if out_path:
        with open(out_path, "w") as fh:
            fh.write("\n".join(lines))
        print(f"results written to {out_path}")
    return failures


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate every table/figure of the paper")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes (CI smoke)")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes per experiment "
                             "(default: min(cpus, 8))")
    parser.add_argument("--serial", action="store_true",
                        help="run every cell in-process, in order")
    parser.add_argument("-o", "--output", default=None,
                        help="also write the tables to this file")
    args = parser.parse_args(argv)
    jobs = None if args.serial else (args.jobs or default_jobs())
    return run_all(quick=args.quick, out_path=args.output, jobs=jobs)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
