"""Page-cache and cgroup statistics.

Disk access is the paper's proxy for hit rate ("Since the page cache
doesn't expose system-wide hit-rate metrics ... we use disk access as a
proxy to analyze policy behavior", §6.1.1); we additionally expose exact
hit/miss counters because the simulator can.
"""

from __future__ import annotations

from repro.snapshot import SnapshotFriendly
from dataclasses import dataclass, field


@dataclass
class CacheStats(SnapshotFriendly):
    """Counters kept per cgroup and aggregated machine-wide."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    refaults: int = 0
    activations: int = 0
    writebacks: int = 0
    #: Admission-filter rejections (folio served direct-I/O style).
    admission_rejects: int = 0
    #: Eviction candidates proposed by a cache_ext policy.
    ext_candidates: int = 0
    #: Candidates rejected by registry/pin validation.
    ext_invalid_candidates: int = 0
    #: Folios evicted through the kernel fallback path.
    fallback_evictions: int = 0
    #: Policy programs that crashed; the watchdog detaches the policy.
    ext_policy_faults: int = 0
    #: kfunc calls that returned an error to a policy program — the
    #: "buggy policy" indicator that used to live only on the framework
    #: object and failed silent unless you went looking.
    kfunc_errors: int = 0
    #: Policies forcibly detached by the watchdog (each detach also
    #: emits a ``cache_ext:watchdog_detach`` trace event).
    watchdog_detaches: int = 0
    #: Block requests that completed with EIO (before VFS retries).
    io_errors: int = 0
    #: Block requests the VFS re-issued after a transient failure.
    io_retries: int = 0
    #: Block requests that exceeded the per-request deadline.
    io_timeouts: int = 0
    #: Dirty pages whose writeback failed (folio stays dirty+resident).
    writeback_errors: int = 0
    #: Hook dispatches that blew the per-hook runtime budget (each one
    #: watchdog-detaches the policy, reason="budget").
    budget_overruns: int = 0
    #: Detached policies taken into quarantine (backoff re-attach).
    quarantines: int = 0
    #: Quarantined policies successfully re-attached after backoff.
    reattaches: int = 0
    #: Direct-reclaim passes that gave up (ENOMEM absorbed by a
    #: fault-plane memory shrink rather than raised to an app).
    reclaim_failures: int = 0
    #: CPU microseconds spent inside cache_ext hooks and kfuncs.
    hook_cpu_us: float = 0.0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from memory (0.0 when idle)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def add(self, other: "CacheStats") -> None:
        """Accumulate ``other`` into this counter set."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def snapshot(self) -> dict:
        """Plain-dict copy, convenient for experiment reporting."""
        return {name: getattr(self, name)
                for name in self.__dataclass_fields__}


@dataclass
class LatencyRecorder:
    """Collects per-operation latencies for percentile reporting.

    The paper reports P99 read latency for the YCSB and GET-SCAN
    experiments; this recorder keeps raw samples (the experiments are
    small enough that reservoirs are unnecessary).
    """

    samples_us: list = field(default_factory=list)

    def record(self, us: float) -> None:
        self.samples_us.append(us)

    def __len__(self) -> int:
        return len(self.samples_us)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; returns 0.0 with no samples."""
        if not self.samples_us:
            return 0.0
        if not 0.0 < pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        ordered = sorted(self.samples_us)
        rank = max(0, int(round(pct / 100.0 * len(ordered))) - 1)
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        if not self.samples_us:
            return 0.0
        return sum(self.samples_us) / len(self.samples_us)
