"""Offline analyzer for timeseries frames: phases, brownouts, warm-up.

The sampler (:mod:`repro.obs.timeseries`) answers "what happened
when"; this module answers "what *changed* when".  It reads a frames
JSONL artifact and emits a typed ``episodes.json`` with three episode
families, cross-correlated against the recorded fault timeline
(``active_faults`` on the machine rows — the PR 5 plan windows):

* ``warmup_complete`` — the first frame whose hit ratio enters a band
  below the steady-state ratio (median of the final quarter of
  frames): the cold-cache fill the fleet-scale ROADMAP item needs to
  see after rolling restarts.
* ``phase_change`` — windowed hit-ratio change-points: the mean over
  the ``window`` frames after a boundary differs from the mean over
  the ``window`` frames before it by at least ``phase_threshold``.
  Candidate boundaries are suppressed to local maxima so one drift
  reports one episode, not ``window`` of them.
* ``degradation`` — brownout episodes: frames whose device service
  metric (busy-µs per transferred page, falling back to the span
  p50 when a frame moved no pages) exceeds ``degrade_factor`` x a
  robust baseline (median of the lowest quarter of positive values —
  immune to open-ended faults skewing the overall median).  Each
  episode records whether it overlaps an injected fault window
  (``fault_overlap``), which is how the chaos acceptance check
  localizes a brownout to within one sample interval.

Everything is pure arithmetic over the frames — deterministic, no
engine, no RNG — so the report is byte-stable for byte-identical
frames.

CLI::

    python -m repro.obs.analyze frames.jsonl -o episodes.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.obs.timeseries import read_frames_jsonl

ANALYZE_FORMAT = "repro.obs.analyze"
ANALYZE_VERSION = 1

#: Change-point comparison window, in frames, each side of a boundary.
DEFAULT_WINDOW = 3
#: Minimum |mean-after - mean-before| hit-ratio delta for a phase change.
DEFAULT_PHASE_THRESHOLD = 0.15
#: Degradation threshold: metric > factor x robust baseline.
DEFAULT_DEGRADE_FACTOR = 3.0
#: Warm-up band: warm once hit ratio >= steady - band.
DEFAULT_WARMUP_BAND = 0.05


def _median(values: list) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
# per-group detectors (frames = machine rows of one (cell, machine))
# ----------------------------------------------------------------------
def _hit_ratios(scope_rows: list) -> list:
    """Per-frame hit ratio of one scope's rows (None when idle)."""
    out = []
    for row in scope_rows:
        lookups = row.get("lookups", 0)
        out.append(row.get("hits", 0) / lookups if lookups else None)
    return out


def detect_warmup(frames: list, ratios: list,
                  band: float = DEFAULT_WARMUP_BAND) -> tuple:
    """``(steady_ratio, episode_or_None)`` for one frame group."""
    active = [(f, r) for f, r in zip(frames, ratios) if r is not None]
    if len(active) < 4:
        return (None, None)
    tail = [r for _f, r in active[-max(1, len(active) // 4):]]
    steady = _median(tail)
    for frame, ratio in active:
        if ratio >= steady - band:
            episode = {"type": "warmup_complete",
                       "t_us": frame["t_us"] + frame["dur_us"],
                       "hit_ratio": round(ratio, 6),
                       "steady_hit_ratio": round(steady, 6)}
            return (steady, episode)
    return (steady, None)


def detect_phase_changes(frames: list, ratios: list,
                         window: int = DEFAULT_WINDOW,
                         threshold: float = DEFAULT_PHASE_THRESHOLD) -> list:
    """Windowed change-point scan over per-frame hit ratios."""
    series = [(f, r) for f, r in zip(frames, ratios) if r is not None]
    n = len(series)
    if n < 2 * window:
        return []
    deltas = {}
    for i in range(window, n - window + 1):
        before = _mean(r for _f, r in series[i - window:i])
        after = _mean(r for _f, r in series[i:i + window])
        if abs(after - before) >= threshold:
            deltas[i] = after - before
    episodes = []
    for i, delta in sorted(deltas.items()):
        # Local-maxima suppression: a drift spanning several
        # boundaries reports only the strongest one per neighbourhood.
        if any(abs(deltas[j]) > abs(delta)
               for j in range(i - window, i + window + 1)
               if j != i and j in deltas):
            continue
        frame = series[i][0]
        episodes.append({"type": "phase_change",
                         "t_us": frame["t_us"],
                         "delta": round(delta, 6),
                         "direction": "up" if delta > 0 else "down"})
    return episodes


def _service_metric(row: dict) -> float:
    """Per-frame device service signal: busy-µs per transferred page
    (continuous, fault-factor-proportional), span p50 when no pages
    moved this frame."""
    pages = row.get("io_read_pages", 0) + row.get("io_write_pages", 0)
    if pages > 0:
        return row.get("disk_busy_us", 0.0) / pages
    return row.get("device_service_p50_us", 0.0)


def detect_degradation(machine_rows: list,
                       factor: float = DEFAULT_DEGRADE_FACTOR) -> list:
    """Brownout episodes: consecutive frames whose service metric
    exceeds ``factor`` x the robust baseline.

    The baseline is the median of the cheapest quartile of fault-free
    frames (``active_faults == 0``) when the timeline has any: an
    open-ended brownout can degrade nearly every frame of a run, and
    a baseline drawn from all frames would then be polluted by the
    very degradation it is meant to flag — even a single fault-free
    frame anchors better than a degraded median.  With no fault-free
    frames at all (organic degradation, or faults armed for the whole
    run) it falls back to the cheapest quartile of all frames.

    Idle frames (no pages transferred and no span quantile, so the
    service metric is zero) carry no evidence either way: they neither
    extend an episode nor terminate it — only a frame that actually
    measured healthy service closes an open episode.
    """
    metrics = [_service_metric(row) for row in machine_rows]
    clean = sorted(m for row, m in zip(machine_rows, metrics)
                   if m > 0 and not row.get("active_faults", 0))
    positive = sorted(m for m in metrics if m > 0)
    if len(positive) < 4:
        return []
    anchor = clean if clean else positive
    baseline = _median(anchor[:max(3, len(anchor) // 4)])
    if baseline <= 0:
        return []
    episodes = []
    current: Optional[dict] = None
    for row, metric in zip(machine_rows, metrics):
        if metric <= 0:
            continue
        degraded = metric > factor * baseline
        if degraded:
            ratio = metric / baseline
            if current is None:
                current = {"type": "degradation",
                           "start_us": row["t_us"],
                           "end_us": row["t_us"] + row["dur_us"],
                           "frames": 1,
                           "peak_ratio": round(ratio, 3),
                           "baseline_service_us": round(baseline, 3),
                           "fault_overlap":
                               row.get("active_faults", 0) > 0}
            else:
                current["end_us"] = row["t_us"] + row["dur_us"]
                current["frames"] += 1
                current["peak_ratio"] = max(current["peak_ratio"],
                                            round(ratio, 3))
                if row.get("active_faults", 0) > 0:
                    current["fault_overlap"] = True
        elif current is not None:
            episodes.append(current)
            current = None
    if current is not None:
        episodes.append(current)
    return episodes


def fault_windows(machine_rows: list) -> list:
    """Contiguous runs of frames with armed fault windows active —
    the injected timeline the degradation episodes are matched
    against."""
    windows = []
    current: Optional[dict] = None
    for row in machine_rows:
        active = row.get("active_faults", 0)
        if active > 0:
            if current is None:
                current = {"start_us": row["t_us"],
                           "end_us": row["t_us"] + row["dur_us"],
                           "max_active": active}
            else:
                current["end_us"] = row["t_us"] + row["dur_us"]
                current["max_active"] = max(current["max_active"], active)
        elif current is not None:
            windows.append(current)
            current = None
    if current is not None:
        windows.append(current)
    return windows


# ----------------------------------------------------------------------
# top-level analysis
# ----------------------------------------------------------------------
def analyze_rows(meta: dict, rows: list, window: int = DEFAULT_WINDOW,
                 phase_threshold: float = DEFAULT_PHASE_THRESHOLD,
                 degrade_factor: float = DEFAULT_DEGRADE_FACTOR,
                 warmup_band: float = DEFAULT_WARMUP_BAND) -> dict:
    """Analyze loaded frame rows into the episodes document."""
    groups: dict[tuple, dict] = {}
    for row in rows:
        key = (row.get("cell", ""), row.get("machine", 0))
        group = groups.setdefault(key, {})
        group.setdefault(row.get("scope", "machine"), []).append(row)

    out_groups = []
    flat = []
    for (cell, machine) in sorted(groups):
        scopes = groups[(cell, machine)]
        machine_rows = scopes.get("machine", [])
        # Primary scope: the busiest cgroup (most lookups); fall back
        # to the machine rows when no cgroup saw traffic.
        primary = "machine"
        best = -1
        for name, scope_rows in sorted(scopes.items()):
            if name == "machine":
                continue
            lookups = sum(r.get("lookups", 0) for r in scope_rows)
            if lookups > best:
                primary, best = name, lookups
        if best <= 0:
            primary = "machine"
        primary_rows = scopes.get(primary, machine_rows)

        ratios = _hit_ratios(primary_rows)
        steady, warmup = detect_warmup(primary_rows, ratios,
                                       band=warmup_band)
        episodes = []
        if warmup is not None:
            episodes.append(warmup)
        episodes.extend(detect_phase_changes(
            primary_rows, ratios, window=window,
            threshold=phase_threshold))
        episodes.extend(detect_degradation(machine_rows,
                                           factor=degrade_factor))
        episodes.sort(key=lambda e: (e.get("t_us", e.get("start_us", 0)),
                                     e["type"]))
        group_doc = {
            "cell": cell,
            "machine": machine,
            "primary_scope": primary,
            "frames": len(machine_rows),
            "steady_hit_ratio": (round(steady, 6)
                                 if steady is not None else None),
            "episodes": episodes,
            "fault_windows": fault_windows(machine_rows),
        }
        out_groups.append(group_doc)
        for episode in episodes:
            flat.append({"cell": cell, "machine": machine, **episode})

    return {
        "format": ANALYZE_FORMAT,
        "version": ANALYZE_VERSION,
        "interval_us": meta.get("interval_us"),
        "params": {"window": window,
                   "phase_threshold": phase_threshold,
                   "degrade_factor": degrade_factor,
                   "warmup_band": warmup_band},
        "groups": out_groups,
        "episodes": flat,
    }


def analyze_file(path: str, **kwargs) -> dict:
    meta, rows = read_frames_jsonl(path)
    return analyze_rows(meta, rows, **kwargs)


def format_report(doc: dict) -> str:
    """Human-readable rendering of an episodes document."""
    lines = []
    for group in doc["groups"]:
        cell = group["cell"] or "(run)"
        lines.append(f"{cell} machine {group['machine']} "
                     f"[{group['frames']} frames, "
                     f"primary scope {group['primary_scope']}]")
        if not group["episodes"]:
            lines.append("  no episodes")
        for ep in group["episodes"]:
            if ep["type"] == "warmup_complete":
                lines.append(
                    f"  warmup_complete  t={ep['t_us'] / 1000.0:10.1f}ms  "
                    f"hit {ep['hit_ratio']:.3f} "
                    f"(steady {ep['steady_hit_ratio']:.3f})")
            elif ep["type"] == "phase_change":
                lines.append(
                    f"  phase_change     t={ep['t_us'] / 1000.0:10.1f}ms  "
                    f"hit-ratio {ep['direction']} {ep['delta']:+.3f}")
            else:
                overlap = "fault" if ep["fault_overlap"] else "no fault"
                lines.append(
                    f"  degradation      "
                    f"t={ep['start_us'] / 1000.0:10.1f}ms"
                    f"..{ep['end_us'] / 1000.0:.1f}ms  "
                    f"peak {ep['peak_ratio']:.1f}x baseline  "
                    f"[{overlap} window]")
        for win in group["fault_windows"]:
            lines.append(
                f"  fault window     "
                f"t={win['start_us'] / 1000.0:10.1f}ms"
                f"..{win['end_us'] / 1000.0:.1f}ms  "
                f"max {win['max_active']} active")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.analyze",
        description="Detect phases, brownouts and warm-up in a "
                    "timeseries frames artifact.")
    parser.add_argument("frames", help="frames JSONL from --timeseries")
    parser.add_argument("-o", "--output", default=None,
                        help="write episodes.json here")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        help="change-point window, frames per side "
                             "(default %(default)s)")
    parser.add_argument("--phase-threshold", type=float,
                        default=DEFAULT_PHASE_THRESHOLD,
                        help="min hit-ratio delta (default %(default)s)")
    parser.add_argument("--degrade-factor", type=float,
                        default=DEFAULT_DEGRADE_FACTOR,
                        help="service-vs-baseline factor "
                             "(default %(default)s)")
    parser.add_argument("--warmup-band", type=float,
                        default=DEFAULT_WARMUP_BAND,
                        help="band below steady ratio (default %(default)s)")
    args = parser.parse_args(argv)

    doc = analyze_file(args.frames, window=args.window,
                       phase_threshold=args.phase_threshold,
                       degrade_factor=args.degrade_factor,
                       warmup_band=args.warmup_band)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    try:
        print(format_report(doc))
    except BrokenPipeError:  # pragma: no cover - pager closed
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
