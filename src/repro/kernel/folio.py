"""Folios: the unit of page-cache residency.

Linux is migrating from ``struct page`` to folios; as in the paper, every
folio here represents a single 4 KiB page ("we use the terms 'folio' and
'page' interchangeably, as in our workloads all folios represent a single
page").

A folio's identity is its Python object identity; cache_ext policies
receive folio references and hand them back as eviction candidates, and
the valid-folio registry (:mod:`repro.cache_ext.registry`) validates
those references exactly as the kernel implementation does, because a
policy may retain a stale reference past eviction.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.address_space import AddressSpace
    from repro.kernel.cgroup import MemCgroup

_folio_ids = itertools.count(1)

PAGE_SIZE = 4096


class Folio:
    """A single resident page of a file.

    Flags follow the kernel's naming: ``referenced`` is the second-access
    bit consulted by the default policy, ``active`` records which LRU
    list the folio conceptually belongs to, ``dirty`` forces writeback
    before eviction, and ``workingset`` marks refault-activated folios.

    ``pin_count`` models ``folio_get``-style elevated reference counts:
    a pinned folio is "in use by the kernel" and must not be evicted —
    this is one of the validation steps of the eviction-candidate
    interface (§4.2.3 of the paper).
    """

    __slots__ = ("id", "mapping", "mapping_id", "index", "memcg",
                 "referenced", "active", "dirty", "uptodate", "workingset",
                 "pin_count", "inserted_at", "lru_node", "ext_node",
                 "ext_reg")

    def __init__(self, mapping: "AddressSpace", index: int,
                 memcg: "MemCgroup") -> None:
        self.id = next(_folio_ids)
        self.mapping: Optional["AddressSpace"] = mapping
        #: Stable file identity; survives eviction (ghost entries key on
        #: it because folio pointers do not persist, §5.1).
        self.mapping_id = mapping.file_id
        self.index = index
        self.memcg = memcg
        self.referenced = False
        self.active = False
        self.dirty = False
        self.uptodate = False
        self.workingset = False
        self.pin_count = 0
        #: Virtual time at insertion; used for age-based policy metadata.
        self.inserted_at: float = 0.0
        #: Node on the kernel's default LRU lists (always maintained,
        #: even when a cache_ext policy is attached — the paper keeps the
        #: kernel structures authoritative and uses them for fallback).
        self.lru_node = None
        #: Node on the attached cache_ext policy's eviction lists.
        self.ext_node = None
        #: Owning replay-mode registry, or None.  The replay fast path
        #: (:class:`repro.cache_ext.registry.ReplayFolioRegistry`)
        #: carries registry membership on the folio itself instead of
        #: in hash buckets; full-mode registries never touch this.
        self.ext_reg = None

    # ------------------------------------------------------------------
    def pin(self) -> None:
        """Take an extra kernel reference (folio becomes uneviction-able)."""
        self.pin_count += 1

    def unpin(self) -> None:
        if self.pin_count <= 0:
            raise RuntimeError("unpin of unpinned folio")
        self.pin_count -= 1

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    @property
    def in_cache(self) -> bool:
        """Whether the folio is still present in its file's mapping."""
        return self.mapping is not None

    def key(self) -> tuple[int, int]:
        """Stable (file, offset) identity surviving the folio itself.

        Ghost entries (S3-FIFO, MGLRU refault tracking) key on this
        because folio pointers are not persistent across evictions
        (§5.1: "we cannot use folio pointers as the key").  Valid even
        after eviction, so removal hooks can record ghost entries.
        """
        return (self.mapping_id, self.index)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = "evicted" if self.mapping is None else (
            f"{self.mapping.file_id}:{self.index}")
        return f"Folio(id={self.id}, {where}, act={int(self.active)})"
