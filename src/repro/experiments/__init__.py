"""Experiment harness: one module per table/figure in the paper.

Every module exposes ``run(quick=False, ..., jobs=None) ->
ExperimentResult`` and ``plan(quick=False, ...) -> ExperimentSpec``:
the plan decomposes the experiment into independent cells (one
simulated machine each) that :mod:`repro.experiments.parallel` fans
across worker processes, with a merge step that is a pure function of
the cell payloads — serial (``jobs=None``) and parallel runs emit
byte-identical tables.  ``quick=True`` shrinks sizes for CI smoke
tests; the default sizes are what ``EXPERIMENTS.md`` and the benchmark
suite use.  All runs are deterministic (seeded RNGs + virtual time).

==============  =====================================================
Module          Reproduces
==============  =====================================================
``table1``      Table 1 — userspace-dispatch overhead
``fig6``        Figure 6 — YCSB throughput and P99 across policies
``fig7``        Figure 7 — YCSB throughput vs. total disk I/O
``fig8``        Figure 8 — Twitter cluster traces across policies
``fig9``        Figure 9 — file search (MRU vs default vs MGLRU)
``fig10``       Figure 10 — GET-SCAN mix incl. fadvise variants
``admission``   §6.1.5 — compaction admission filter
``table3``      Table 3 — policy implementation LoC
``fig11``       Figure 11 — per-cgroup policy isolation
``table4``      Table 4 — no-op policy CPU overhead (fio)
``table5``      Table 5 — cache_ext MGLRU vs native MGLRU fidelity
==============  =====================================================
"""

from repro.experiments.harness import (ExperimentResult, attach_policy,
                                       build_machine, make_db_env)

__all__ = ["ExperimentResult", "build_machine", "attach_policy",
           "make_db_env"]
