"""ARC extension-policy tests (§4.2.2's multi-list flexibility claim)."""

from repro.cache_ext import load_policy
from repro.ebpf.verifier import verify_program
from repro.kernel import Machine
from repro.policies.arc import make_arc_policy


def make_env(limit=32, pages=512):
    machine = Machine()
    cg = machine.new_cgroup("t", limit_pages=limit)
    f = machine.fs.create("data")
    for i in range(pages):
        f.store[i] = i
    f.npages = pages
    f.ra_enabled = False
    return machine, cg, f


def run_trace(machine, f, cg, indices):
    def step(thread, it=iter(list(indices))):
        idx = next(it, None)
        if idx is None:
            return False
        machine.fs.read_page(f, idx)
        return True
    machine.spawn("trace", step, cgroup=cg)
    machine.run()


class TestArc:
    def test_verifies(self):
        ops = make_arc_policy()
        for prog in ops.loaded_programs():
            assert verify_program(prog, raise_on_findings=False) == [], \
                prog.name

    def test_single_touch_goes_to_t1(self):
        machine, cg, f = make_env()
        policy = load_policy(machine, cg, make_arc_policy(cache_pages=32))
        run_trace(machine, f, cg, [0, 1, 2])
        t1, t2 = policy.lists[0], policy.lists[1]
        assert len(t1) == 3
        assert len(t2) == 0

    def test_second_touch_promotes_to_t2(self):
        machine, cg, f = make_env()
        policy = load_policy(machine, cg, make_arc_policy(cache_pages=32))
        run_trace(machine, f, cg, [0, 1, 0])
        t1, t2 = policy.lists[0], policy.lists[1]
        assert f.mapping.lookup(0) in t2.folios()
        assert f.mapping.lookup(1) in t1.folios()

    def test_ghost_hit_adapts_p_and_readmits_to_t2(self):
        machine, cg, f = make_env(limit=16)
        ops = make_arc_policy(cache_pages=16)
        policy = load_policy(machine, cg, ops)
        run_trace(machine, f, cg, range(64))  # page 0 long evicted
        assert ops.user_maps["b1"].lookup((f.file_id, 0)) is not None
        p_before = ops.user_maps["bss"].lookup(2)
        run_trace(machine, f, cg, [0])
        assert ops.user_maps["bss"].lookup(2) >= p_before
        t2 = policy.lists[1]
        assert f.mapping.lookup(0) in t2.folios()

    def test_memory_limit_holds(self):
        machine, cg, f = make_env(limit=24)
        load_policy(machine, cg, make_arc_policy(cache_pages=24))
        run_trace(machine, f, cg, [(i * 17) % 512 for i in range(600)])
        assert cg.charged_pages <= 24

    def test_scan_resistance(self):
        """ARC's signature: a one-touch scan stream cannot displace the
        re-referenced working set living in T2."""
        def hit_ratio(factory):
            machine, cg, f = make_env(limit=24)
            if factory is not None:
                load_policy(machine, cg, factory(cache_pages=24))
            hot = list(range(8))
            trace = []
            for i in range(150):
                trace.extend(hot)          # hot set (lands in T2)
                trace.append(40 + i)       # one-touch scan stream
            run_trace(machine, f, cg, trace)
            return cg.stats.hit_ratio

        arc = hit_ratio(make_arc_policy)
        assert arc > 0.85

    def test_frequency_beats_pure_recency_workload(self):
        machine, cg, f = make_env(limit=16)
        load_policy(machine, cg, make_arc_policy(cache_pages=16))
        # Re-referenced pages survive churn.
        trace = []
        for i in range(100):
            trace.append(i % 4)
            trace.append(100 + i)
        run_trace(machine, f, cg, trace)
        assert all(f.mapping.lookup(h) is not None for h in range(4))
