"""Figure 11 — isolation: per-cgroup policies beat global ones.

Two cgroups share one machine: a YCSB C workload (10 GiB-scaled
cgroup) and a file-search workload (1 GiB-scaled cgroup), running
concurrently for a fixed window.  Four configurations:

* both on the kernel default ("global default"),
* both on LFU ("global LFU"),
* both on MRU ("global MRU"),
* the *tailored* setup — YCSB on LFU, file search on MRU — which in
  the paper wins both axes (+49.8% YCSB, +79.4% search vs baseline).

YCSB is measured as throughput over the window; file search as the
number of corpus passes completed in the window (the paper's
"searches executed in 7 minutes").
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.apps.filesearch import FileSearcher, corpus_pages, \
    make_source_tree
from repro.apps.lsm import DbOptions, LsmDb
from repro.experiments.harness import (CellSpec, ExperimentResult,
                                       ExperimentSpec, attach_policy,
                                       build_machine)
from repro.workloads.ycsb import YCSB_WORKLOADS, YcsbRunner, load_items

FULL_SCALE = {"nkeys": 40000, "ycsb_cgroup_pages": 1000,
              "search_files": 300, "search_cgroup_frac": 0.7,
              "window_s": 3.0, "nthreads": 4}
QUICK_SCALE = {"nkeys": 6000, "ycsb_cgroup_pages": 192,
               "search_files": 60, "search_cgroup_frac": 0.7,
               "window_s": 0.6, "nthreads": 2}

#: (label, YCSB policy, search policy)
CONFIGS = (
    ("default/default", "default", "default"),
    ("lfu/lfu", "lfu", "lfu"),
    ("mru/mru", "mru", "mru"),
    ("tailored lfu+mru", "lfu", "mru"),
)


def run_one(ycsb_policy: str, search_policy: str, nkeys: int,
            ycsb_cgroup_pages: int, search_files: int,
            search_cgroup_frac: float, window_s: float, nthreads: int,
            seed: int = 42):
    machine = build_machine("default")
    # cgroup A: YCSB C on the LSM store.
    ycsb_cg = machine.new_cgroup("ycsb", limit_pages=ycsb_cgroup_pages)
    db = LsmDb(machine, ycsb_cg, options=DbOptions(memtable_entries=512))
    db.bulk_load(load_items(nkeys))
    attach_policy(machine, ycsb_cg, ycsb_policy, ycsb_cgroup_pages)
    db.spawn_compaction_thread()
    # cgroup B: file search.
    files = make_source_tree(machine, nfiles=search_files, seed=seed)
    search_limit = max(64, int(corpus_pages(files) * search_cgroup_frac))
    search_cg = machine.new_cgroup("search", limit_pages=search_limit)
    attach_policy(machine, search_cg, search_policy, search_limit)

    # Both run for the whole window (ops chosen far beyond the window;
    # the engine deadline cuts them off).
    runner = YcsbRunner(db, YCSB_WORKLOADS["C"], nkeys=nkeys,
                        nops=10_000_000, nthreads=nthreads, seed=seed,
                        zipf_theta=1.1)
    runner.spawn()
    searcher = FileSearcher(machine, files, search_cg,
                            nthreads=nthreads, passes=None)
    searcher.spawn()
    window_us = window_s * 1e6
    machine.run(until_us=window_us)

    ycsb_tput = runner.result.ops / window_s
    searches = searcher.result.passes_completed
    return ycsb_tput, searches


def cell(ycsb_policy: str, search_policy: str, **params) -> dict:
    tput, searches = run_one(ycsb_policy, search_policy, **params)
    return {"ycsb_tput": tput, "searches": searches}


def plan(quick: bool = False, configs: Iterable[tuple] = CONFIGS,
         scale: dict = None) -> ExperimentSpec:
    params = dict(QUICK_SCALE if quick else FULL_SCALE)
    if scale:
        params.update(scale)
    configs = [tuple(c) for c in configs]
    cells = [CellSpec("fig11", label, cell,
                      dict(ycsb_policy=ycsb_policy,
                           search_policy=search_policy, **params))
             for label, ycsb_policy, search_policy in configs]
    return ExperimentSpec("fig11", cells, _merge,
                          meta={"labels": [c[0] for c in configs]})


def _merge(meta: dict, payloads: dict) -> ExperimentResult:
    out = ExperimentResult(
        "Figure 11: per-cgroup policy isolation",
        headers=["config", "ycsb_ops_per_sec", "searches_completed",
                 "ycsb_vs_baseline_pct", "search_vs_baseline_pct"])
    base = None
    for label in meta["labels"]:
        c = payloads[label]
        tput, searches = c["ycsb_tput"], c["searches"]
        if base is None:
            base = (tput, searches)
        out.add_row(label, round(tput, 1), round(searches, 2),
                    round((tput - base[0]) / base[0] * 100.0, 1),
                    round((searches - base[1]) / base[1] * 100.0, 1))
    out.notes.append(
        "paper: tailored setup +49.8% YCSB and +79.4% search over the "
        "default/default baseline; global policies hurt the mismatched "
        "workload")
    return out


def run(quick: bool = False, configs: Iterable[tuple] = CONFIGS,
        scale: dict = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    from repro.experiments.parallel import run_spec
    spec = plan(quick=quick, configs=configs, scale=scale)
    return run_spec(spec, jobs=jobs, serial=jobs is None)


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(run().format_table())
