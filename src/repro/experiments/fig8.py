"""Figure 8 — Twitter cache traces: no single policy wins everywhere.

The paper replays five Twitter cluster traces (17, 18, 24, 34, 52)
through LevelDB with the cgroup at 10% of each cluster's data size and
finds a different winner per cluster: LHD on 34, LFU on 52, MGLRU on
17 and 18, the kernel default on 24 (where MGLRU OOMed).

Our traces are synthetic profiles whose structure (drift, temporal
reuse, bursts, stable skew — see :mod:`repro.workloads.twitter`)
drives the same per-cluster differentiation.  The headline to check is
Takeaway 2: the winner column is not constant.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments.harness import (CellSpec, ExperimentResult,
                                       ExperimentSpec, make_db_env,
                                       prepare_db_env_snapshot)
from repro.workloads.twitter import CLUSTERS, TwitterRunner

FULL_SCALE = {"nkeys": 40000, "cgroup_pages": 1000, "nops": 40000,
              "warmup_ops": 25000}
QUICK_SCALE = {"nkeys": 6000, "cgroup_pages": 150, "nops": 4000,
               "warmup_ops": 2000}

#: The policy set the paper compares on the Twitter workloads.
POLICIES = ("default", "mglru", "lfu", "s3fifo", "lhd")


def run_one(policy: str, cluster: int, nkeys: int, cgroup_pages: int,
            nops: int, warmup_ops: int = 0, seed: int = 11,
            mode: str = "full", snapshot: bool = False):
    env = make_db_env(policy, cgroup_pages=cgroup_pages, nkeys=nkeys,
                      compaction_thread=True, mode=mode,
                      snapshot=snapshot)
    if mode == "scan":
        from repro.scan import twitter_scan
        result = twitter_scan([env], CLUSTERS[cluster], nkeys=nkeys,
                              nops=nops, warmup_ops=warmup_ops,
                              seed=seed)[0]
        return result, env
    runner = TwitterRunner(env.db, CLUSTERS[cluster], nkeys=nkeys,
                           nops=nops, warmup_ops=warmup_ops, seed=seed)
    return runner.run(), env


def cell(policy: str, cluster: int, **params) -> dict:
    """Twitter-trace payload; replay-capable (``supports_replay``):
    throughput and hit ratio are virtual-time counters, bit-identical
    on the trace-replay fast path.  ``mode="scan"`` runs the
    approximate decision-level stepper instead (``supports_scan``)."""
    result, env = run_one(policy, cluster, **params)
    return {"throughput": result.throughput,
            "hit_ratio": env.cgroup.metrics().hit_ratio}


def scan_cells(ids: list, cells: list, snapshot: bool = False,
               prepares=None) -> dict:
    """One cluster row as a single multi-cell scan pass (the policy
    cells of a cluster share one trace stream — decode it once, fan it
    out via :func:`repro.scan.twitter_scan`)."""
    from repro.scan import twitter_scan
    first = cells[0]
    envs = [make_db_env(kw["policy"], cgroup_pages=kw["cgroup_pages"],
                        nkeys=kw["nkeys"], compaction_thread=True,
                        mode="scan",
                        snapshot=snapshot or kw.get("snapshot", False))
            for kw in cells]
    results = twitter_scan(envs, CLUSTERS[first["cluster"]],
                           nkeys=first["nkeys"], nops=first["nops"],
                           warmup_ops=first["warmup_ops"],
                           seed=first.get("seed", 11))
    return {cell_id: {"throughput": result.throughput,
                      "hit_ratio": env.cgroup.metrics().hit_ratio}
            for cell_id, result, env in zip(ids, results, envs)}


def plan(quick: bool = False,
         clusters: Iterable[int] = (17, 18, 24, 34, 52),
         policies: Iterable[str] = POLICIES,
         scale: dict = None) -> ExperimentSpec:
    params = dict(QUICK_SCALE if quick else FULL_SCALE)
    if scale:
        params.update(scale)
    clusters, policies = list(clusters), list(policies)
    cells = [CellSpec("fig8", f"{c}/{p}", cell,
                      dict(policy=p, cluster=c, **params),
                      supports_replay=True, supports_snapshot=True,
                      snapshot_prepare=prepare_db_env_snapshot,
                      supports_scan=True)
             for c in clusters for p in policies]
    scan_rows = [(str(c), [f"{c}/{p}" for p in policies])
                 for c in clusters]

    def prepare() -> None:
        # One stream per cluster, shared by every policy cell (and,
        # under the parallel runner, by every forked worker via COW).
        for c in clusters:
            TwitterRunner.prepare_streams(
                CLUSTERS[c], nkeys=params["nkeys"],
                nops=params["nops"],
                warmup_ops=params["warmup_ops"],
                seed=params.get("seed", 11))

    return ExperimentSpec("fig8", cells, _merge,
                          meta={"clusters": clusters,
                                "policies": policies,
                                "scan": {"fn": scan_cells,
                                         "rows": scan_rows}},
                          prepare=prepare)


def _merge(meta: dict, payloads: dict) -> ExperimentResult:
    out = ExperimentResult(
        "Figure 8: Twitter cluster traces",
        headers=["cluster", "policy", "ops_per_sec", "hit_ratio"])
    winners = {}
    for cluster in meta["clusters"]:
        best = (None, -1.0)
        for policy in meta["policies"]:
            c = payloads[f"{cluster}/{policy}"]
            out.add_row(cluster, policy, round(c["throughput"], 1),
                        round(c["hit_ratio"], 4))
            if c["throughput"] > best[1]:
                best = (policy, c["throughput"])
        winners[cluster] = best[0]
    out.notes.append(f"winners per cluster: {winners}")
    out.notes.append(
        "paper winners: 17->MGLRU, 18->MGLRU, 24->default (MGLRU "
        "OOMed), 34->LHD, 52->LFU; headline = no single winner")
    return out


def run(quick: bool = False,
        clusters: Iterable[int] = (17, 18, 24, 34, 52),
        policies: Iterable[str] = POLICIES,
        scale: dict = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    from repro.experiments.parallel import run_spec
    spec = plan(quick=quick, clusters=clusters, policies=policies,
                scale=scale)
    return run_spec(spec, jobs=jobs, serial=jobs is None)


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(run().format_table())
