"""VFS tests: pread/pwrite, readahead, fsync, fadvise, truncation."""

import pytest

from repro.kernel import FAdvice, Machine
from repro.kernel.errors import EBADF, EINVAL
from repro.kernel.page_cache import ExtPolicyBase
from repro.kernel.vfs import MAX_RA_PAGES


class HintPolicy(ExtPolicyBase):
    """Minimal ext policy: only the readahead hint hook matters."""

    name = "hint"

    def __init__(self, hint):
        self.hint = hint
        self.admitted = 0

    def admit(self, mapping, index):
        self.admitted += 1
        return True

    def readahead_hint(self, mapping, index, seq_streak):
        return self.hint

    def folio_added(self, folio):
        pass

    def folio_accessed(self, folio):
        pass

    def folio_removed(self, folio):
        pass

    def propose_candidates(self, nr):
        return []

    def holds_reference(self, folio):
        return False


def make_fs(limit=256):
    machine = Machine()
    cg = machine.new_cgroup("t", limit_pages=limit)
    f = machine.fs.create("file")
    for i in range(128):
        f.store[i] = f"data{i}"
    f.npages = 128
    return machine, cg, f


def run_in_thread(machine, cg, fn):
    out = {}

    def step(thread):
        out["result"] = fn(thread)
        return False

    machine.spawn("op", step, cgroup=cg)
    machine.run()
    return out.get("result")


class TestReadWrite:
    def test_read_returns_stored_object(self):
        machine, cg, f = make_fs()
        value = run_in_thread(machine, cg,
                              lambda th: machine.fs.read_page(f, 5))
        assert value == "data5"

    def test_read_past_eof(self):
        machine, cg, f = make_fs()
        with pytest.raises(EINVAL):
            machine.fs.read_page(f, 128)

    def test_read_negative_index(self):
        machine, cg, f = make_fs()
        with pytest.raises(EINVAL):
            machine.fs.read_page(f, -1)

    def test_write_extends_file(self):
        machine, cg, f = make_fs()
        run_in_thread(machine, cg,
                      lambda th: machine.fs.write_page(f, 200, "new"))
        assert f.npages == 201
        assert f.store[200] == "new"

    def test_write_marks_dirty(self):
        machine, cg, f = make_fs()
        run_in_thread(machine, cg,
                      lambda th: machine.fs.write_page(f, 0, "x"))
        assert f.mapping.lookup(0).dirty

    def test_full_page_write_needs_no_read(self):
        machine, cg, f = make_fs()
        run_in_thread(machine, cg,
                      lambda th: machine.fs.write_page(f, 0, "x"))
        assert machine.disk.stats.read_pages == 0

    def test_append_page(self):
        machine, cg, f = make_fs()
        idx = run_in_thread(machine, cg,
                            lambda th: machine.fs.append_page(f, "end"))
        assert idx == 128
        assert f.npages == 129

    def test_read_range(self):
        machine, cg, f = make_fs()
        values = run_in_thread(
            machine, cg, lambda th: machine.fs.read_range(f, 3, 4))
        assert values == ["data3", "data4", "data5", "data6"]

    def test_deleted_file_rejects_io(self):
        machine, cg, f = make_fs()
        machine.fs.delete("file")
        with pytest.raises(EBADF):
            machine.fs.read_page(f, 0)
        with pytest.raises(EBADF):
            machine.fs.write_page(f, 0, "x")


class TestNamespace:
    def test_create_open_exists(self):
        machine = Machine()
        f = machine.fs.create("a")
        assert machine.fs.open("a") is f
        assert machine.fs.exists("a")
        assert not machine.fs.exists("b")

    def test_duplicate_create_rejected(self):
        machine = Machine()
        machine.fs.create("a")
        with pytest.raises(EINVAL):
            machine.fs.create("a")

    def test_open_missing_rejected(self):
        machine = Machine()
        with pytest.raises(EBADF):
            machine.fs.open("nope")

    def test_delete_missing_rejected(self):
        machine = Machine()
        with pytest.raises(EBADF):
            machine.fs.delete("nope")


class TestReadahead:
    def _sequential_read(self, machine, cg, f, n):
        def step(thread, state={"i": 0}):
            if state["i"] >= n:
                return False
            machine.fs.read_page(f, state["i"])
            state["i"] += 1
            return True
        machine.spawn("seq", step, cgroup=cg)
        machine.run()

    def test_sequential_reads_trigger_readahead(self):
        machine, cg, f = make_fs()
        self._sequential_read(machine, cg, f, 20)
        # Fewer device requests than pages: batched readahead.
        assert machine.disk.stats.reads < 20
        assert machine.disk.stats.read_pages >= 20

    def test_readahead_pages_become_hits(self):
        machine, cg, f = make_fs()
        self._sequential_read(machine, cg, f, 20)
        assert cg.stats.hits > 0

    def test_random_reads_no_readahead(self):
        machine, cg, f = make_fs()
        indices = [0, 50, 3, 99, 7, 61]

        def step(thread, it=iter(indices)):
            idx = next(it, None)
            if idx is None:
                return False
            machine.fs.read_page(f, idx)
            return True

        machine.spawn("rand", step, cgroup=cg)
        machine.run()
        assert machine.disk.stats.read_pages == len(indices)

    def test_fadvise_random_disables_readahead(self):
        machine, cg, f = make_fs()
        machine.fs.fadvise(f, FAdvice.RANDOM)
        self._sequential_read(machine, cg, f, 20)
        assert machine.disk.stats.read_pages == 20

    def test_fadvise_sequential_widens_window(self):
        machine, cg, f = make_fs()
        machine.fs.fadvise(f, FAdvice.SEQUENTIAL)
        assert f.ra_window == 16

    def test_fadvise_normal_resets(self):
        machine, cg, f = make_fs()
        machine.fs.fadvise(f, FAdvice.SEQUENTIAL)
        machine.fs.fadvise(f, FAdvice.NORMAL)
        assert f.ra_window == 8
        assert f.ra_enabled


class TestReadaheadEdgeCases:
    def _read(self, machine, cg, f, indices):
        it = iter(indices)

        def step(thread):
            idx = next(it, None)
            if idx is None:
                return False
            machine.fs.read_page(f, idx)
            return True

        machine.spawn("ra", step, cgroup=cg)
        machine.run()

    def test_hint_zero_disables_readahead(self):
        machine, cg, f = make_fs()
        cg.ext_policy = HintPolicy(0)
        self._read(machine, cg, f, range(10))
        # Every page was its own device read: no prefetching at all.
        assert machine.disk.stats.read_pages == 10

    def test_negative_hint_disables_readahead(self):
        machine, cg, f = make_fs()
        cg.ext_policy = HintPolicy(-5)
        self._read(machine, cg, f, range(10))
        assert machine.disk.stats.read_pages == 10

    def test_hint_clamped_at_max_ra_pages(self):
        machine, cg, f = make_fs()
        cg.ext_policy = HintPolicy(10_000)
        self._read(machine, cg, f, [0])
        # One miss + a readahead window bounded by the kernel cap,
        # not the policy's oversized ask.
        assert machine.disk.stats.read_pages == 1 + MAX_RA_PAGES
        assert f.mapping.lookup(MAX_RA_PAGES) is not None
        assert f.mapping.lookup(MAX_RA_PAGES + 1) is None

    def test_backward_seek_resets_streak(self):
        machine, cg, f = make_fs()
        self._read(machine, cg, f, [5, 6, 7])
        assert f.seq_streak == 2
        self._read(machine, cg, f, [3])
        assert f.seq_streak == 0
        assert f.last_read_index == 3

    def test_readahead_stops_at_resident_folio(self):
        machine, cg, f = make_fs()
        # Make page 5 resident, then arm readahead at page 2: the
        # window [3..9) must stop before the resident folio.
        self._read(machine, cg, f, [5])
        self._read(machine, cg, f, [0, 1, 2])
        assert f.mapping.lookup(3) is not None
        assert f.mapping.lookup(4) is not None
        assert f.mapping.lookup(6) is None


class TestBulkReadRange:
    def test_single_device_request_for_missing_range(self):
        machine, cg, f = make_fs()
        values = run_in_thread(
            machine, cg, lambda th: machine.fs.read_range(f, 0, 12))
        assert values == [f"data{i}" for i in range(12)]
        assert machine.disk.stats.reads == 1
        assert machine.disk.stats.read_pages == 12
        assert cg.stats.misses == 12
        assert cg.stats.lookups == 12

    def test_resident_range_is_all_hits(self):
        machine, cg, f = make_fs()
        run_in_thread(machine, cg,
                      lambda th: machine.fs.read_range(f, 0, 8))
        reads_before = machine.disk.stats.reads
        run_in_thread(machine, cg,
                      lambda th: machine.fs.read_range(f, 0, 8))
        assert machine.disk.stats.reads == reads_before
        assert cg.stats.hits == 8

    def test_mixed_range_reads_only_missing_pages(self):
        machine, cg, f = make_fs()
        run_in_thread(machine, cg,
                      lambda th: machine.fs.read_page(f, 5))
        run_in_thread(machine, cg,
                      lambda th: machine.fs.read_range(f, 3, 6))
        # Pages 3,4,6,7,8 missed; page 5 hit.
        assert cg.stats.hits == 1
        assert machine.disk.stats.read_pages == 6  # 1 + 5
        assert machine.disk.stats.reads == 2

    def test_bulk_updates_recency(self):
        machine, cg, f = make_fs()
        run_in_thread(machine, cg,
                      lambda th: machine.fs.read_range(f, 0, 4))
        run_in_thread(machine, cg,
                      lambda th: machine.fs.read_range(f, 0, 4))
        assert f.mapping.lookup(0).referenced  # first touch after insert
        run_in_thread(machine, cg,
                      lambda th: machine.fs.read_range(f, 0, 4))
        assert f.mapping.lookup(0).active  # second touch activated

    def test_bulk_emits_per_page_lookup_events(self):
        from repro.obs.trace import TraceSession
        machine, cg, f = make_fs()
        run_in_thread(machine, cg,
                      lambda th: machine.fs.read_page(f, 2))
        with TraceSession(machine, "cache:lookup") as session:
            run_in_thread(machine, cg,
                          lambda th: machine.fs.read_range(f, 0, 5))
        events = [(e.data["index"], e.data["hit"])
                  for e in session.events]
        assert events == [(0, 0), (1, 0), (2, 1), (3, 0), (4, 0)]

    def test_ext_policy_opts_out_of_bulk(self):
        machine, cg, f = make_fs()
        policy = HintPolicy(None)
        cg.ext_policy = policy
        run_in_thread(machine, cg,
                      lambda th: machine.fs.read_range(f, 0, 10))
        # Per-page fallback: the admission filter saw every insertion
        # (10 pages, nothing resident, hint None keeps the kernel
        # heuristic which prefetches within the same range).
        assert policy.admitted == 10
        assert machine.disk.stats.reads > 1

    def test_bulk_io_disabled_falls_back(self):
        machine, cg, f = make_fs()
        machine.fs.bulk_io_enabled = False
        run_in_thread(machine, cg,
                      lambda th: machine.fs.read_range(f, 0, 10))
        # Per-page loop: first two misses are single-page reads before
        # readahead arms, so more than one device request happens.
        assert machine.disk.stats.reads > 1
        assert cg.charged_pages == 10

    def test_bulk_matches_per_page_residency_and_charges(self):
        def run(bulk):
            machine, cg, f = make_fs()
            machine.fs.bulk_io_enabled = bulk
            run_in_thread(machine, cg,
                          lambda th: machine.fs.read_range(f, 0, 10))
            return (sorted(folio.index for folio in f.mapping.folios()),
                    cg.charged_pages, cg.stats.lookups)

        assert run(bulk=True) == run(bulk=False)

    def test_read_range_past_eof_rejected(self):
        machine, cg, f = make_fs()
        with pytest.raises(EINVAL):
            machine.fs.read_range(f, 120, 20)

    def test_read_range_empty_is_noop(self):
        machine, cg, f = make_fs()
        assert machine.fs.read_range(f, 0, 0) == []
        assert machine.disk.stats.reads == 0

    def test_read_range_deleted_file_rejected(self):
        machine, cg, f = make_fs()
        machine.fs.delete("file")
        with pytest.raises(EBADF):
            machine.fs.read_range(f, 0, 4)


class TestFadviseSemantics:
    def test_dontneed_drops_clean_pages(self):
        machine, cg, f = make_fs()
        run_in_thread(machine, cg,
                      lambda th: machine.fs.read_range(f, 0, 5))
        machine.fs.fadvise(f, FAdvice.DONTNEED, 0, 5)
        assert all(f.mapping.lookup(i) is None for i in range(5))

    def test_dontneed_spares_dirty_pages(self):
        machine, cg, f = make_fs()
        run_in_thread(machine, cg,
                      lambda th: machine.fs.write_page(f, 0, "x"))
        machine.fs.fadvise(f, FAdvice.DONTNEED, 0, 1)
        assert f.mapping.lookup(0) is not None

    def test_willneed_prefetches(self):
        machine, cg, f = make_fs()
        run_in_thread(machine, cg, lambda th: machine.fs.fadvise(
            f, FAdvice.WILLNEED, 10, 5))
        assert all(f.mapping.lookup(i) is not None
                   for i in range(10, 15))

    def test_noreuse_blocks_promotion(self):
        machine, cg, f = make_fs()
        machine.fs.fadvise(f, FAdvice.NOREUSE)
        run_in_thread(machine, cg, lambda th: [
            machine.fs.read_page(f, 0) for _ in range(5)])
        folio = f.mapping.lookup(0)
        assert folio is not None
        assert not folio.active  # recency never updated

    def test_per_read_noreuse(self):
        machine, cg, f = make_fs()
        run_in_thread(machine, cg, lambda th: [
            machine.fs.read_page(f, 0, noreuse=True) for _ in range(5)])
        assert not f.mapping.lookup(0).active


class TestFsync:
    def test_fsync_writes_dirty_pages(self):
        machine, cg, f = make_fs()

        def op(thread):
            machine.fs.write_page(f, 0, "a")
            machine.fs.write_page(f, 1, "b")
            return machine.fs.fsync(f)

        written = run_in_thread(machine, cg, op)
        assert written == 2
        assert machine.disk.stats.write_pages == 2
        assert not f.mapping.lookup(0).dirty

    def test_fsync_clean_file_is_noop(self):
        machine, cg, f = make_fs()
        assert machine.fs.fsync(f) == 0
        assert machine.disk.stats.write_pages == 0


class TestDelete:
    def test_delete_drops_folios_and_charges(self):
        machine, cg, f = make_fs()
        run_in_thread(machine, cg,
                      lambda th: machine.fs.read_range(f, 0, 10))
        assert cg.charged_pages == 10
        machine.fs.delete("file")
        assert cg.charged_pages == 0
        assert not machine.fs.exists("file")
