"""Extension policies vs. the paper's suite (post-paper innovations).

The paper's closing argument is that cache_ext "push[es] forward the
frontier of caching research" by making new policies deployable.  This
bench runs two post-paper algorithms implemented on the unmodified
list API — SIEVE (NSDI '24) and ARC — against the kernel default and
the paper's LFU on the YCSB-C-style workload, plus the custom
prefetching hook (§7's FetchBPF direction) on the file-search scan
workload.
"""

from repro.cache_ext import load_policy
from repro.experiments.fig9 import run_one as search_run_one
from repro.experiments.harness import (ExperimentResult, build_machine,
                                       make_db_env)
from repro.policies import (make_arc_policy, make_lfu_policy,
                            make_prefetch_policy, make_sieve_policy)
from repro.workloads.ycsb import YCSB_WORKLOADS, YcsbRunner

from conftest import run_once

NKEYS = 16000
CGROUP = 400
OPS = 10000
WARMUP = 8000


def _run_kv(factory):
    env = make_db_env("default", cgroup_pages=CGROUP, nkeys=NKEYS,
                      compaction_thread=True)
    if factory is not None:
        try:
            ops = factory(map_entries=4 * CGROUP)
        except TypeError:
            ops = factory(cache_pages=CGROUP)
        load_policy(env.machine, env.cgroup, ops)
    result = YcsbRunner(env.db, YCSB_WORKLOADS["C"], nkeys=NKEYS,
                        nops=OPS, nthreads=8, warmup_ops=WARMUP,
                        zipf_theta=1.1).run()
    return result, env


def test_extension_eviction_policies(benchmark, record_table):
    def run():
        out = ExperimentResult(
            "Extensions: SIEVE and ARC on the list API (YCSB C)",
            headers=["policy", "ops_per_sec", "hit_ratio"])
        for name, factory in (("default", None),
                              ("lfu", make_lfu_policy),
                              ("sieve", make_sieve_policy),
                              ("arc", make_arc_policy)):
            result, env = _run_kv(factory)
            out.add_row(name, round(result.throughput, 1),
                        round(env.cgroup.metrics().hit_ratio, 4))
        return out

    result = run_once(benchmark, run)
    record_table(result)
    tput = {r[0]: r[1] for r in result.rows}
    # Both post-paper policies are competitive with the default —
    # the claim is deployability on the unmodified API, not victory.
    assert tput["sieve"] > tput["default"] * 0.85
    assert tput["arc"] > tput["default"] * 0.85


def test_extension_prefetch_hook(benchmark, record_table):
    from repro.apps.filesearch import FileSearcher, corpus_pages, \
        make_source_tree

    def run_search(with_prefetch):
        machine = build_machine("default")
        files = make_source_tree(machine, nfiles=200)
        limit = max(64, int(corpus_pages(files) * 0.7))
        cgroup = machine.new_cgroup("search", limit_pages=limit)
        if with_prefetch:
            load_policy(machine, cgroup, make_prefetch_policy(window=32))
        searcher = FileSearcher(machine, files, cgroup, passes=4)
        result = searcher.run()
        return result.elapsed_us / 1e6, machine.metrics().disk["reads"]

    def run():
        out = ExperimentResult(
            "Extensions: custom prefetching hook (file search)",
            headers=["config", "seconds", "device_requests"])
        for label, flag in (("kernel readahead", False),
                            ("cache_ext prefetch", True)):
            seconds, requests = run_search(flag)
            out.add_row(label, round(seconds, 3), requests)
        return out

    result = run_once(benchmark, run)
    record_table(result)
    rows = {r[0]: r for r in result.rows}
    # The aggressive streaming window issues fewer, larger device
    # requests and finishes sooner on this scan-dominated workload.
    assert rows["cache_ext prefetch"][2] < \
        rows["kernel readahead"][2]
    assert rows["cache_ext prefetch"][1] <= \
        rows["kernel readahead"][1] * 1.02
