"""The LSM database facade.

Put/get/scan/delete over a memtable + leveled SSTables, with leveled
compaction on a background daemon thread.  All data-page I/O goes
through the simulated page cache, charged to the cgroup of the calling
thread, so eviction policy quality translates directly into operation
latency — the causal chain behind every DB experiment in the paper.
"""

from __future__ import annotations

from repro.snapshot import SnapshotFriendly
import bisect
import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.apps.lsm.compaction import CompactionJob
from repro.apps.lsm.format import RecordFormat
from repro.apps.lsm.memtable import MemTable, WriteAheadLog
from repro.apps.lsm.sstable import SSTable, SSTableWriter
from repro.kernel.errors import EIO, ETIMEDOUT
from repro.sim.engine import current_thread

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.cgroup import MemCgroup
    from repro.kernel.machine import Machine

_db_ids = itertools.count(1)

#: Background thread idle sleep when there is no compaction work.
COMPACTION_IDLE_US = 500.0


@dataclass
class DbOptions(SnapshotFriendly):
    """Tuning knobs, scaled down ~64x from LevelDB defaults.

    ``memtable_entries`` controls table size (one flush = one L0
    table); level targets grow by ``level_multiplier``.
    """

    fmt: RecordFormat = field(default_factory=RecordFormat)
    memtable_entries: int = 2048
    l0_compaction_trigger: int = 4
    level_multiplier: int = 10
    max_levels: int = 4
    #: L1 size target, expressed in tables (of memtable size each).
    level1_tables: int = 5

    @property
    def table_pages(self) -> int:
        """Data pages per table at the configured record size."""
        return max(1, self.memtable_entries // self.fmt.entries_per_page)

    def level_target_pages(self, level: int) -> int:
        """Size target for level >= 1, in data pages."""
        base = self.level1_tables * self.table_pages
        return base * (self.level_multiplier ** (level - 1))


class LsmDb(SnapshotFriendly):
    """An LSM-tree key-value store on one machine/cgroup."""

    def __init__(self, machine: "Machine", cgroup: "MemCgroup",
                 name: Optional[str] = None,
                 options: Optional[DbOptions] = None) -> None:
        self.machine = machine
        self.cgroup = cgroup
        self.name = name or f"db{next(_db_ids)}"
        self.opts = options or DbOptions()
        self.mem = MemTable(self.opts.fmt)
        self.wal = WriteAheadLog(machine.fs, f"{self.name}/wal",
                                 self.opts.fmt)
        #: ``levels[0]`` holds overlapping tables, newest first;
        #: deeper levels are sorted and non-overlapping.
        self.levels: list[list[SSTable]] = [
            [] for _ in range(self.opts.max_levels + 1)]
        self._sst_counter = itertools.count(1)
        # Latency attribution (repro.obs.spans): every DB operation is
        # a span root, so per-op latency decomposes into components.
        self._tp_span = machine.trace.tracepoint("span:close")
        self._spans = machine.spans
        self._job: Optional[CompactionJob] = None
        self._job_target_level = 0
        self.compaction_threads: list = []
        self.closed = False
        # Counters.
        self.n_puts = 0
        self.n_gets = 0
        self.n_scans = 0
        self.n_flushes = 0
        self.n_compactions = 0
        #: Operations degraded by an exhausted-retry I/O error (the DB
        #: absorbs :class:`EIO`/:class:`ETIMEDOUT` instead of crashing:
        #: a get reports a miss, a put drops the write).
        self.n_io_errors = 0
        #: Bumped whenever the set of live SSTables changes (flush,
        #: compaction install, bulk load).  Guards every structure-
        #: derived cache below.
        self._struct_version = 0
        #: Per-level ``[t.min_key for t in level]``, rebuilt lazily
        #: after each version bump; point reads and scans binary-search
        #: these instead of re-materializing the list per call.
        self._minkeys: dict[int, list] = {}
        #: Replay-mode read plans: key -> (struct_version, ((file,
        #: page), ...), value).  ``None`` (the default) disables
        #: recording entirely; see :meth:`enable_plan_cache`.
        self._plans: Optional[dict] = None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _next_sst_name(self) -> str:
        return f"{self.name}/sst-{next(self._sst_counter):06d}"

    def _bump_version(self) -> None:
        """Record a change to the live table set; invalidates every
        structure-derived cache (min-key lists, read plans)."""
        self._struct_version += 1
        self._minkeys.clear()

    def _level_minkeys(self, idx: int) -> list:
        mk = self._minkeys.get(idx)
        if mk is None:
            mk = self._minkeys[idx] = [t.min_key
                                       for t in self.levels[idx]]
        return mk

    def _level_table(self, idx: int, key: str) -> Optional[SSTable]:
        """:meth:`_table_for_key` over the cached min-key list."""
        level = self.levels[idx]
        if not level:
            return None
        pos = bisect.bisect_right(self._level_minkeys(idx), key) - 1
        if pos < 0:
            return None
        table = level[pos]
        return table if key <= table.max_key else None

    def enable_plan_cache(self) -> None:
        """Turn on read-plan memoization (replay mode).

        A point lookup's *virtual-time footprint* is exactly its
        sequence of ``fs.read_page`` calls: bloom probes, index binary
        searches and min-key scans are pure CPU that charges nothing.
        Which pages a key's lookup touches depends only on the LSM
        structure (guarded by ``_struct_version``) and the key — never
        on cache state — so a recorded plan can re-issue the same
        ``read_page`` calls and return the same value while skipping
        all of the pure-CPU search work.  Disabled under fault
        injection: error paths must re-run the real lookup.
        """
        if self._plans is None:
            self._plans = {}

    def _get_tables(self, key: str, reads: Optional[list] = None):
        """The table-probing tail of :meth:`get` (memtable already
        missed); returns the value and optionally records page reads."""
        found = False
        value = None
        for table in self.levels[0]:  # newest first
            found, value = table.get(key, reads)
            if found:
                break
        if not found:
            for idx in range(1, len(self.levels)):
                table = self._level_table(idx, key)
                if table is None:
                    continue
                found, value = table.get(key, reads)
                if found:
                    break
        if not found:
            value = None
        return value

    def _all_tables(self) -> Iterable[SSTable]:
        for level in self.levels:
            yield from level

    @property
    def total_data_pages(self) -> int:
        return sum(t.n_data_pages for t in self._all_tables())

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, key: str, value) -> None:
        if self.closed:
            raise RuntimeError("db is closed")
        span = None
        tp = self._tp_span
        if tp.enabled:
            _thread = current_thread()
            if _thread is not None and _thread.span is None:
                span = self._spans.open(_thread, "lsm.put")
        try:
            try:
                self.wal.append(key, value)
                self.mem.put(key, value)
                self.n_puts += 1
                if len(self.mem) >= self.opts.memtable_entries:
                    self.flush_memtable()
            except (EIO, ETIMEDOUT):
                # Retries are exhausted below us; degrade by dropping
                # the write (the memtable keeps whatever landed, so a
                # failed flush retries on the next threshold crossing).
                self.n_io_errors += 1
        finally:
            if span is not None:
                self._spans.close(_thread, span)

    def delete(self, key: str) -> None:
        """Tombstone write; compaction erases it at the bottom level."""
        self.put(key, None)

    def flush_memtable(self) -> Optional[SSTable]:
        """Write the memtable as a new L0 table (write-stall style:
        synchronous in the calling thread, as LevelDB stalls do)."""
        if len(self.mem) == 0:
            return None
        writer = SSTableWriter(self.machine.fs, self._next_sst_name(),
                               self.opts.fmt,
                               expected_entries=len(self.mem),
                               through_cache=True)
        for key, value in self.mem.sorted_items():
            writer.add(key, value)
        table = writer.finish()
        self.levels[0].insert(0, table)  # newest first
        self._bump_version()
        self.mem.clear()
        self.wal.rotate()
        self.n_flushes += 1
        return table

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[object]:
        """Point lookup; None for missing or tombstoned keys."""
        self.n_gets += 1
        # Span opens at entry and closes at return, so ``dur_us``
        # equals the read latency the workload driver records around
        # this call (the acceptance anchor for attribution).
        span = None
        tp = self._tp_span
        if tp.enabled:
            _thread = current_thread()
            if _thread is not None and _thread.span is None:
                span = self._spans.open(_thread, "lsm.get")
        try:
            try:
                found, value = self.mem.get(key)
                if found:
                    return value
                plans = self._plans
                if plans is None or self.machine.fs._fault_mode:
                    return self._get_tables(key)
                plan = plans.get(key)
                if plan is not None \
                        and plan[0] == self._struct_version:
                    # Replay the recorded page faults — identical
                    # virtual-time charges, cache transitions and trace
                    # events — and skip the search CPU around them.
                    read_page = self.machine.fs.read_page
                    for file, page in plan[1]:
                        read_page(file, page)
                    return plan[2]
                reads: list = []
                value = self._get_tables(key, reads)
                plans[key] = (self._struct_version, tuple(reads), value)
                return value
            except (EIO, ETIMEDOUT):
                # Exhausted-retry read failure: degrade to a miss
                # rather than tearing down the workload.
                self.n_io_errors += 1
                return None
        finally:
            if span is not None:
                self._spans.close(_thread, span)

    @staticmethod
    def _table_for_key(level: list[SSTable], key: str) -> Optional[SSTable]:
        """Binary search over a sorted, non-overlapping level."""
        if not level:
            return None
        pos = bisect.bisect_right([t.min_key for t in level], key) - 1
        if pos < 0:
            return None
        table = level[pos]
        return table if key <= table.max_key else None

    def scan_iter(self, start_key: str,
                  advice: Optional[str] = None):
        """Lazy range scan from ``start_key``.

        Yields live ``(key, value)`` records in order: the memtable and
        every overlapping table are merged, the newest version wins,
        tombstones are skipped.  Data pages are read *as the iterator
        is consumed*, so long scans interleave with foreground traffic
        the way a real iterator-based scan does — drivers (e.g. the
        GET-SCAN workload) consume a bounded chunk per scheduling step.

        ``advice`` applies one of the fadvise strategies of §6.1.4 to
        the scan's reads: ``"noreuse"`` reads without recency updates,
        ``"dontneed"`` drops the touched pages when the iterator is
        exhausted or closed, ``"sequential"`` widens readahead on the
        scanned files.
        """
        self.n_scans += 1
        noreuse = advice == "noreuse"
        touched: Optional[list] = [] if advice == "dontneed" else None
        sources = [self.mem.iter_from(start_key)]
        sources += [t.iter_from(start_key, noreuse, touched)
                    for t in self.levels[0]]
        for idx in range(1, len(self.levels)):
            level = self.levels[idx]
            start = bisect.bisect_right(
                self._level_minkeys(idx), start_key) - 1
            for table in level[max(start, 0):]:
                if table.max_key >= start_key:
                    sources.append(
                        t_iter(table, start_key, noreuse, touched))
        # Priority: memtable (0) newest, then L0 newest-first, then
        # deeper levels; lower priority index wins on key ties.  The
        # merge is hand-rolled instead of layering heapq.merge over
        # per-source tagging generators: that stack cost three Python
        # frame resumptions per merged entry, and long scans merge
        # millions.  The source-advancing schedule is identical to
        # heapq.merge's — one prefetch per source in priority order,
        # then advance exactly the source whose entry was consumed —
        # so the simulated page reads happen in the same order at the
        # same virtual times.  (key, prio) is unique across sources,
        # so heap comparisons never reach a source's iterator.
        heap = []
        for prio, src in enumerate(sources):
            nxt = src.__next__
            try:
                key, value = nxt()
            except StopIteration:
                continue
            heap.append([(key, prio, value), prio, nxt])
        heapq.heapify(heap)
        heapreplace = heapq.heapreplace
        heappop = heapq.heappop
        last_key = None
        try:
            while len(heap) > 1:
                try:
                    while True:
                        s = heap[0]
                        key, _prio, value = s[0]
                        if key != last_key:
                            last_key = key
                            if value is not None:  # tombstones skipped
                                yield (key, value)
                        k2, v2 = s[2]()
                        s[0] = (k2, s[1], v2)
                        heapreplace(heap, s)
                except StopIteration:
                    heappop(heap)
            if heap:  # single live source: drain without the heap
                s = heap[0]
                key, _prio, value = s[0]
                if key != last_key:
                    last_key = key
                    if value is not None:
                        yield (key, value)
                nxt = s[2]
                while True:
                    try:
                        key, value = nxt()
                    except StopIteration:
                        break
                    if key == last_key:
                        continue
                    last_key = key
                    if value is None:
                        continue  # tombstone
                    yield (key, value)
        finally:
            if touched:
                self._drop_scanned(touched)

    def scan(self, start_key: str, count: int,
             advice: Optional[str] = None) -> list[tuple]:
        """Eager range scan: ``count`` records via :meth:`scan_iter`."""
        # The span lives here, not in the generator: a generator's
        # frames interleave with the consumer, so only the eager
        # wrapper has well-defined open/close times on one thread.
        span = None
        tp = self._tp_span
        if tp.enabled:
            _thread = current_thread()
            if _thread is not None and _thread.span is None:
                span = self._spans.open(_thread, "lsm.scan")
        try:
            it = self.scan_iter(start_key, advice=advice)
            out = []
            try:
                try:
                    for entry in it:
                        out.append(entry)
                        if len(out) >= count:
                            break
                except (EIO, ETIMEDOUT):
                    # Degrade to a truncated result set.
                    self.n_io_errors += 1
            finally:
                it.close()
            return out
        finally:
            if span is not None:
                self._spans.close(_thread, span)

    def _drop_scanned(self, touched: list) -> None:
        """FADV_DONTNEED the pages a scan read (grouped per file)."""
        from repro.kernel.vfs import FAdvice
        by_file: dict = {}
        for file, idx in touched:
            by_file.setdefault(file, []).append(idx)
        for file, indices in by_file.items():
            lo, hi = min(indices), max(indices)
            self.machine.fs.fadvise(file, FAdvice.DONTNEED, lo, hi - lo + 1)

    # ------------------------------------------------------------------
    # bulk load
    # ------------------------------------------------------------------
    def bulk_load(self, items: list[tuple]) -> None:
        """Pre-create the database without simulated I/O.

        Writes sorted ``(key, value)`` records directly into
        bottom-level tables, bypassing the page cache — the equivalent
        of loading the database before the experiment and dropping
        caches, which is the paper's methodology.
        """
        items = sorted(items)
        per_table = self.opts.table_pages * self.opts.fmt.entries_per_page
        bottom = self.opts.max_levels
        for start in range(0, len(items), per_table):
            chunk = items[start:start + per_table]
            writer = SSTableWriter(self.machine.fs, self._next_sst_name(),
                                   self.opts.fmt,
                                   expected_entries=len(chunk),
                                   through_cache=False)
            for key, value in chunk:
                writer.add(key, value)
            self.levels[bottom].append(writer.finish())
        self._bump_version()

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def _pick_compaction(self) -> Optional[tuple]:
        """Choose (inputs, target_level, drop_tombstones) or None."""
        if len(self.levels[0]) > self.opts.l0_compaction_trigger:
            inputs = list(self.levels[0])
            min_key = min(t.min_key for t in inputs)
            max_key = max(t.max_key for t in inputs)
            overlaps = [t for t in self.levels[1]
                        if t.overlaps(min_key, max_key)]
            return (inputs + overlaps, 1, self.opts.max_levels == 1)
        for level in range(1, self.opts.max_levels):
            pages = sum(t.n_data_pages for t in self.levels[level])
            if pages > self.opts.level_target_pages(level):
                victim = self.levels[level][0]
                overlaps = [t for t in self.levels[level + 1]
                            if t.overlaps(victim.min_key, victim.max_key)]
                drop = (level + 1) == self.opts.max_levels
                return ([victim] + overlaps, level + 1, drop)
        return None

    def compaction_step(self) -> bool:
        """One increment of background compaction; True if work ran."""
        span = None
        tp = self._tp_span
        if tp.enabled:
            _thread = current_thread()
            if _thread is not None and _thread.span is None:
                span = self._spans.open(_thread, "lsm.compaction")
        try:
            if self._job is None:
                picked = self._pick_compaction()
                if picked is None:
                    return False
                inputs, target, drop = picked
                self._job = CompactionJob(
                    self.machine.fs, inputs, self.opts.fmt,
                    max_table_pages=self.opts.table_pages,
                    name_fn=self._next_sst_name,
                    drop_tombstones=drop)
                self._job_target_level = target
            try:
                if self._job.step():
                    self._install_compaction(self._job,
                                             self._job_target_level)
                    self._job = None
            except (EIO, ETIMEDOUT):
                # Abandon the job; inputs stay installed and a later
                # step re-picks the compaction from scratch.  An
                # unhandled error here would tear down the background
                # daemon — and with it the whole engine run.
                self.n_io_errors += 1
                self._job = None
            return True
        finally:
            if span is not None:
                self._spans.close(_thread, span)

    def _install_compaction(self, job: CompactionJob, target: int) -> None:
        input_set = {t.file.file_id for t in job.inputs}
        for level in self.levels:
            level[:] = [t for t in level
                        if t.file.file_id not in input_set]
        merged = sorted(self.levels[target] + job.outputs,
                        key=lambda t: t.min_key)
        self.levels[target] = merged
        self._bump_version()
        for table in job.inputs:
            self.machine.fs.delete(table.file.name)
        self.n_compactions += 1

    def spawn_compaction_thread(self, name: Optional[str] = None):
        """Start a background compaction daemon; returns the thread.

        The thread's TID is what the admission filter (§5.6) registers
        in its ``compaction_tids`` map.
        """
        def step(thread) -> bool:
            if self.closed:
                return False
            if not self.compaction_step():
                thread.advance(COMPACTION_IDLE_US)
            return True

        thread = self.machine.spawn(
            name or f"{self.name}-compaction", step,
            cgroup=self.cgroup, daemon=True)
        self.compaction_threads.append(thread)
        return thread

    def drain_compaction(self, max_rounds: int = 10000) -> None:
        """Synchronously run compaction until no work remains (setup)."""
        for _round in range(max_rounds):
            if not self.compaction_step():
                return
        raise RuntimeError("compaction did not converge")

    def close(self) -> None:
        self.closed = True


def t_iter(table: SSTable, start_key: str, noreuse: bool = False,
           touched=None):
    """Module-level iterator shim (keeps scan() free of closures)."""
    return table.iter_from(start_key, noreuse, touched)


