#!/usr/bin/env python
"""Application-informed policies: telling the kernel what you know.

Two scenarios from §5.5 and §5.6 of the paper, both built on the idea
that the *application* knows which of its threads do disposable I/O:

1. **GET-SCAN priority** — a database registers its scan thread-pool's
   TIDs; the policy gives scan-fetched folios their own eviction list
   and sacrifices them first, protecting point-lookup latency.
2. **Compaction admission filter** — an LSM store registers its
   background compaction threads; folios they fault in are never
   admitted to the cache at all (direct-I/O-style service).

Run it::

    python examples/application_informed.py
"""

from repro.experiments import admission, fig10
from repro.experiments.harness import ExperimentResult


def main():
    print("1) GET-SCAN priority policy (§6.1.4)\n")
    result = ExperimentResult(
        "mixed GET-SCAN workload",
        headers=["variant", "GET ops/s", "GET p99 (us)", "scans/s"])
    scale = dict(nkeys=10000, cgroup_pages=256, n_gets=10000,
                 scan_len=2000, get_threads=2, scan_threads=1)
    for label, policy, mode in (("default", "default", None),
                                ("fadv-dontneed", "default", "dontneed"),
                                ("cache_ext get-scan", "get-scan", None)):
        run, _env = fig10.run_one(label, policy, mode, **scale)
        result.add_row(label, round(run.get_throughput, 1),
                       round(run.get_p99_us, 1),
                       round(run.scan_throughput, 2))
    print(result.format_table())

    print("\n2) compaction admission filter (§6.1.5)\n")
    result = ExperimentResult(
        "uniform R/W with background compaction",
        headers=["variant", "ops/s", "p99 read (us)", "rejected pages"])
    scale = dict(nkeys=10000, cgroup_pages=256, nops=8000,
                 warmup_ops=2000, nthreads=4)
    for filtered in (False, True):
        run, env = admission.run_one(filtered, **scale)
        result.add_row("admission-filter" if filtered else "baseline",
                       round(run.throughput, 1),
                       round(run.p99_read_us, 1),
                       env.cgroup.metrics().stats["admission_rejects"])
    print(result.format_table())
    print("\nThe filter keeps compaction's bulk reads out of the page "
          "cache,\nso the read path's working set survives compaction "
          "storms.")


if __name__ == "__main__":
    main()
