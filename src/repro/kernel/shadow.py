"""Workingset shadow entries and refault distance.

When the kernel evicts a file folio it leaves a *shadow entry* in the
mapping recording the cgroup's eviction clock at that moment.  When the
same offset is faulted back in, the *refault distance* — evictions that
happened in between — tells the kernel whether the page would have been
a hit had the cache been slightly larger.  A small distance activates
the refaulted folio directly into the active list (§2.1 of the paper)
and feeds MGLRU's PID controller (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.cgroup import MemCgroup


@dataclass(frozen=True)
class ShadowEntry:
    """Metadata left behind by an evicted folio.

    Attributes
    ----------
    memcg_id:
        The cgroup the folio was charged to when evicted.
    eviction_clock:
        That cgroup's eviction counter at eviction time.
    workingset:
        Whether the folio was active/workingset when it left memory.
    tier:
        MGLRU access-frequency tier at eviction (0 for non-MGLRU
        policies); lets MGLRU attribute refaults to tiers.
    """

    memcg_id: int
    eviction_clock: int
    workingset: bool = False
    tier: int = 0


def make_shadow(memcg: MemCgroup, workingset: bool, tier: int = 0) -> ShadowEntry:
    """Build a shadow entry at the cgroup's current eviction clock."""
    return ShadowEntry(memcg_id=memcg.id,
                       eviction_clock=memcg.eviction_clock,
                       workingset=workingset,
                       tier=tier)


def refault_distance(entry: ShadowEntry, memcg: MemCgroup) -> int:
    """Evictions from ``memcg`` since ``entry`` was written.

    The clock only moves forward; a negative distance indicates a bug.
    """
    distance = memcg.eviction_clock - entry.eviction_clock
    if distance < 0:
        raise RuntimeError("refault distance went backwards")
    return distance


def refault_should_activate(entry: ShadowEntry, memcg: MemCgroup) -> bool:
    """Linux's workingset test, simplified to cgroup granularity.

    The kernel compares the refault distance against the size of the
    workingset (roughly the cgroup's resident file pages).  If the
    distance is smaller, the page was pushed out prematurely and is
    activated on refault.
    """
    if entry.memcg_id != memcg.id:
        # Refault observed from a different cgroup; be conservative.
        return False
    return refault_distance(entry, memcg) <= memcg.charged_pages
