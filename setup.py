"""Setuptools shim.

The offline environment ships setuptools 65.5 without the ``wheel``
package, so PEP 660 editable installs cannot build; this shim enables
the legacy ``pip install -e . --no-use-pep517`` path.  All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
