"""Workload generator tests: distributions, YCSB, Twitter, GET-SCAN."""

from collections import Counter

import pytest

from repro.apps.lsm import DbOptions, LsmDb
from repro.apps.lsm.format import RecordFormat
from repro.kernel import Machine
from repro.workloads import streams
from repro.workloads.distributions import (CdfZipfianGenerator,
                                           LatestGenerator,
                                           ScrambledZipfianGenerator,
                                           UniformGenerator,
                                           ZipfianGenerator)
from repro.workloads.getscan import GetScanWorkload
from repro.workloads.twitter import (CLUSTERS, ClusterKeyStream,
                                     ClusterProfile, TwitterRunner)
from repro.workloads.ycsb import (YCSB_WORKLOADS, YcsbRunner, YcsbSpec,
                                  key_of, load_items)


class TestDistributions:
    def test_uniform_range_and_spread(self):
        gen = UniformGenerator(100, seed=1)
        samples = [gen.next() for _ in range(5000)]
        assert all(0 <= s < 100 for s in samples)
        assert len(set(samples)) > 90

    def test_zipfian_is_skewed(self):
        gen = ZipfianGenerator(1000, seed=2)
        counts = Counter(gen.next() for _ in range(20000))
        top10 = sum(counts[i] for i in range(10))
        assert top10 / 20000 > 0.3  # heavy head

    def test_zipfian_rank_order(self):
        gen = ZipfianGenerator(1000, seed=3)
        counts = Counter(gen.next() for _ in range(50000))
        assert counts[0] > counts[100] > counts.get(900, 0)

    def test_zipfian_bounds(self):
        gen = ZipfianGenerator(50, seed=4)
        assert all(0 <= gen.next() < 50 for _ in range(2000))

    def test_zipfian_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)

    def test_cdf_zipfian_handles_theta_above_one(self):
        gen = CdfZipfianGenerator(1000, theta=1.2, seed=5)
        counts = Counter(gen.next() for _ in range(20000))
        top10 = sum(counts[i] for i in range(10))
        assert top10 / 20000 > 0.5  # more skewed than theta<1

    def test_scrambled_scatters_hot_keys(self):
        gen = ScrambledZipfianGenerator(10000, seed=6)
        hot = Counter(gen.next() for _ in range(20000)).most_common(10)
        hot_keys = sorted(k for k, _count in hot)
        gaps = [b - a for a, b in zip(hot_keys, hot_keys[1:])]
        assert max(gaps) > 100  # not clustered

    def test_scrambled_deterministic_across_instances(self):
        a = ScrambledZipfianGenerator(1000, seed=7)
        b = ScrambledZipfianGenerator(1000, seed=7)
        assert [a.next() for _ in range(50)] == \
            [b.next() for _ in range(50)]

    def test_latest_tracks_inserts(self):
        gen = LatestGenerator(100, seed=8)
        assert max(gen.next() for _ in range(500)) <= 99
        for _ in range(50):
            gen.advance()
        samples = [gen.next() for _ in range(500)]
        assert max(samples) > 99  # window slid forward
        assert all(s >= 0 for s in samples)


class TestYcsbSpecs:
    def test_all_specs_sum_to_one(self):
        assert set(YCSB_WORKLOADS) == {"A", "B", "C", "D", "E", "F",
                                       "uniform", "uniform-rw"}

    def test_bad_proportions_rejected(self):
        with pytest.raises(ValueError):
            YcsbSpec("bad", read=0.5, update=0.2)

    def test_workload_d_uses_latest(self):
        assert YCSB_WORKLOADS["D"].distribution == "latest"

    def test_key_format_sorts_numerically(self):
        assert key_of(5) < key_of(50) < key_of(500)

    def test_load_items(self):
        items = load_items(10)
        assert len(items) == 10
        assert items[0][0] == key_of(0)


def small_db_env(nkeys=2000, limit=128):
    machine = Machine()
    cg = machine.new_cgroup("db", limit_pages=limit)
    db = LsmDb(machine, cg, options=DbOptions(
        fmt=RecordFormat(value_size=1000), memtable_entries=128))
    db.bulk_load(load_items(nkeys))
    return machine, cg, db


class TestYcsbRunner:
    def test_read_only_workload_counts(self):
        machine, cg, db = small_db_env()
        result = YcsbRunner(db, YCSB_WORKLOADS["C"], nkeys=2000,
                            nops=500).run()
        assert result.ops == 500
        assert result.op_counts == {"read": 500}
        assert result.missing_keys == 0
        assert len(result.read_latency) == 500
        assert result.throughput > 0

    def test_mixed_workload_proportions(self):
        machine, cg, db = small_db_env()
        result = YcsbRunner(db, YCSB_WORKLOADS["A"], nkeys=2000,
                            nops=2000).run()
        reads = result.op_counts.get("read", 0)
        updates = result.op_counts.get("update", 0)
        assert reads + updates == 2000
        assert 0.4 < reads / 2000 < 0.6

    def test_insert_workload_grows_keyspace(self):
        machine, cg, db = small_db_env()
        runner = YcsbRunner(db, YCSB_WORKLOADS["D"], nkeys=2000,
                            nops=1000)
        result = runner.run()
        assert runner._insert_counter[0] > 2000
        assert result.missing_keys == 0

    def test_scan_workload_runs(self):
        machine, cg, db = small_db_env()
        result = YcsbRunner(db, YCSB_WORKLOADS["E"], nkeys=2000,
                            nops=200).run()
        assert result.op_counts.get("scan", 0) > 150

    def test_warmup_excluded_from_measurement(self):
        machine, cg, db = small_db_env()
        result = YcsbRunner(db, YCSB_WORKLOADS["C"], nkeys=2000,
                            nops=300, warmup_ops=300).run()
        assert result.ops == 300
        assert len(result.read_latency) == 300

    def test_multithreaded_runner(self):
        machine, cg, db = small_db_env()
        result = YcsbRunner(db, YCSB_WORKLOADS["C"], nkeys=2000,
                            nops=400, nthreads=4).run()
        assert result.ops == 400

    def test_determinism(self):
        outs = []
        for _ in range(2):
            machine, cg, db = small_db_env()
            result = YcsbRunner(db, YCSB_WORKLOADS["B"], nkeys=2000,
                                nops=400, seed=9).run()
            outs.append((result.throughput, cg.stats.snapshot()))
        assert outs[0] == outs[1]


class TestTwitter:
    def test_all_paper_clusters_defined(self):
        assert set(CLUSTERS) == {17, 18, 24, 34, 52}

    def test_stream_indices_in_range(self):
        for cluster, profile in CLUSTERS.items():
            stream = ClusterKeyStream(profile, 1000, seed=3)
            for _ in range(2000):
                kind, index = stream.next_op()
                assert 0 <= index < 1000
                assert kind in ("read", "update")

    def test_drift_moves_working_set(self):
        profile = ClusterProfile("drifty", window_frac=0.1,
                                 drift_per_kop=500, update_frac=0.0)
        stream = ClusterKeyStream(profile, 10000, seed=4)
        early = {stream.next_index() for _ in range(500)}
        for _ in range(20000):
            stream.next_index()
        late = {stream.next_index() for _ in range(500)}
        overlap = len(early & late) / len(early)
        assert overlap < 0.5

    def test_bursts_die(self):
        profile = ClusterProfile("bursty", burst_prob=0.05, burst_len=5,
                                 update_frac=0.0)
        stream = ClusterKeyStream(profile, 10000, seed=5)
        seen = [stream.next_index() for _ in range(5000)]
        counts = Counter(seen)
        burst_keys = [k for k, c in counts.items() if c == 6]
        assert burst_keys  # burst = initial touch + burst_len repeats

    def test_runner_measures(self):
        machine, cg, db = small_db_env()
        result = TwitterRunner(db, CLUSTERS[52], nkeys=2000, nops=500,
                               warmup_ops=100).run()
        assert result.ops == 500
        assert result.throughput > 0


class TestStreamPregen:
    """The pre-generated replay path must be byte-identical to the
    on-line sampling path it replaced — same op sequence, same virtual
    timings, same cgroup counters."""

    @pytest.mark.parametrize("workload", ["A", "D", "E", "uniform-rw"])
    def test_ycsb_replay_matches_online(self, workload):
        outs = []
        for pregen in (False, True):
            machine, cg, db = small_db_env()
            runner = YcsbRunner(db, YCSB_WORKLOADS[workload],
                                nkeys=2000, nops=600, nthreads=3,
                                warmup_ops=150, seed=13, pregen=pregen)
            result = runner.run()
            outs.append((result.ops, result.op_counts,
                         result.elapsed_us, result.missing_keys,
                         result.read_latency.p99,
                         runner._insert_counter[0],
                         machine.now_us, cg.stats.snapshot()))
        assert outs[0] == outs[1]

    def test_twitter_replay_matches_online(self):
        outs = []
        for pregen in (False, True):
            machine, cg, db = small_db_env()
            result = TwitterRunner(db, CLUSTERS[34], nkeys=2000,
                                   nops=600, warmup_ops=150, seed=3,
                                   pregen=pregen).run()
            outs.append((result.ops, result.elapsed_us,
                         result.missing_keys, result.read_latency.p99,
                         machine.now_us, cg.stats.snapshot()))
        assert outs[0] == outs[1]

    def test_getscan_replay_matches_online(self):
        outs = []
        for pregen in (False, True):
            machine, cg, db = small_db_env(nkeys=2000, limit=256)
            result = GetScanWorkload(db, nkeys=2000, n_gets=600,
                                     get_threads=2, scan_threads=1,
                                     scan_len=80, seed=9,
                                     pregen=pregen).run()
            outs.append((result.gets, result.scans,
                         result.get_elapsed_us, result.scan_elapsed_us,
                         result.get_latency.p99,
                         result.scan_latency.p99,
                         result.missing_keys,
                         machine.now_us, cg.stats.snapshot()))
        assert outs[0] == outs[1]

    def test_streams_are_cached_and_shared(self):
        spec = YCSB_WORKLOADS["B"]
        a = streams.ycsb_stream(spec, 500, 200, 21, 0, 0.99, 1.4)
        b = streams.ycsb_stream(spec, 500, 200, 21, 0, 0.99, 1.4)
        assert a is b
        assert streams.cache_info()["entries"] >= 1

    def test_key_strings_match_key_of(self):
        keys = streams.key_strings(50)
        assert keys == [key_of(i) for i in range(50)]
        assert streams.key_strings(50) is keys

    def test_insert_indices_are_runtime_state(self):
        # Insert ops carry -1: the key index comes from the shared
        # insert counter at replay time, not from pre-generation.
        spec = YCSB_WORKLOADS["D"]
        stream = streams.ycsb_stream(spec, 300, 400, 5, 0, 0.99, 1.4)
        kinds = list(stream.kinds)
        assert streams.OP_INSERT in kinds
        for kind, index in zip(kinds, stream.indices):
            if kind == streams.OP_INSERT:
                assert index == -1
            else:
                assert index >= 0

    def test_prepare_streams_prefills_cache(self):
        streams.clear_cache()
        try:
            spec = YCSB_WORKLOADS["E"]
            YcsbRunner.prepare_streams(spec, nkeys=400, nops=300,
                                       nthreads=2, seed=17,
                                       warmup_ops=100,
                                       zipf_theta=1.1)
            entries = streams.cache_info()["entries"]
            assert entries >= 3  # two worker streams + key strings
            # A runner with the same parameters reuses the cache.
            machine, cg, db = small_db_env(nkeys=400)
            runner = YcsbRunner(db, spec, nkeys=400, nops=300,
                                nthreads=2, warmup_ops=100, seed=17,
                                zipf_theta=1.1)
            runner.spawn()
            assert streams.cache_info()["entries"] == entries
        finally:
            streams.clear_cache()


class TestGetScan:
    def test_mix_ratio(self):
        machine, cg, db = small_db_env(nkeys=2000, limit=256)
        workload = GetScanWorkload(db, nkeys=2000, n_gets=1000,
                                   get_threads=2, scan_threads=1,
                                   scan_len=100)
        result = workload.run()
        assert result.gets == 1000
        assert result.scans == workload.n_scans
        assert result.get_throughput > 0
        assert result.scan_throughput > 0

    def test_scan_tids_recorded(self):
        machine, cg, db = small_db_env(nkeys=2000, limit=256)
        workload = GetScanWorkload(db, nkeys=2000, n_gets=200,
                                   get_threads=1, scan_threads=2,
                                   scan_len=50)
        workload.spawn()
        assert len(workload.scan_tids) == 2
        machine.run()

    def test_invalid_fadvise_mode(self):
        machine, cg, db = small_db_env()
        with pytest.raises(ValueError):
            GetScanWorkload(db, nkeys=2000, n_gets=10,
                            fadvise_mode="bogus")

    @pytest.mark.parametrize("mode", ["dontneed", "noreuse",
                                      "sequential"])
    def test_fadvise_modes_run(self, mode):
        machine, cg, db = small_db_env(nkeys=2000, limit=256)
        result = GetScanWorkload(db, nkeys=2000, n_gets=300,
                                 get_threads=1, scan_threads=1,
                                 scan_len=50, fadvise_mode=mode).run()
        assert result.gets == 300
