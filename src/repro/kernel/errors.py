"""Kernel error types.

Mirrors the errno-style failures the real page cache and cgroup code
paths can produce.  Using distinct exception classes keeps test
assertions precise.
"""


class KernelError(Exception):
    """Base class for simulated kernel failures."""


class ENOMEM(KernelError):
    """Out of memory: a cgroup could not reclaim below its limit."""


class EINVAL(KernelError):
    """Invalid argument passed to a kernel interface."""


class EBADF(KernelError):
    """Operation on a nonexistent or closed file."""


class EBUSY(KernelError):
    """Target folio is pinned or otherwise in use."""


class EIO(KernelError):
    """A block-device request failed (transient or permanent)."""


class ETIMEDOUT(KernelError):
    """A block-device request exceeded its completion deadline."""
