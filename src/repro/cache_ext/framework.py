"""The cache_ext framework: hook dispatch and kernel-side safety.

:class:`CacheExtPolicy` is the object the reclaim driver talks to when
a cgroup has a custom policy attached.  It implements the kernel side
of the contract from §4 of the paper:

* registry bookkeeping on every insertion/removal (memory safety);
* dispatching the policy's BPF programs on the five events, charging
  the hook-dispatch CPU cost that Table 4 measures;
* the eviction-candidate request (``evict_folios``) with the 32-entry
  batch context;
* kernel-side cleanup on removal — *the kernel*, not the policy,
  removes evicted folios from eviction lists ("it is not necessary to
  remove the folio from the list upon eviction, as this is done by
  cache_ext", §4.2.5);
* the admission-filter extension (§5.6).

The eviction *fallback* (underdelivering policies) lives in the reclaim
driver (:meth:`repro.kernel.page_cache.PageCache._shrink_batch`), which
is where the kernel implements it too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cache_ext.lists import EvictionList
from repro.cache_ext.ops import CacheExtOps, EvictionCtx
from repro.cache_ext.registry import FolioRegistry
from repro.kernel.address_space import AddressSpace
from repro.kernel.cgroup import MemCgroup
from repro.kernel.folio import Folio
from repro.kernel.page_cache import ExtPolicyBase
from repro.sim.engine import current_thread

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.machine import Machine

#: Registry sizing when the cgroup is unlimited (root attach in tests).
DEFAULT_REGISTRY_BUCKETS = 4096


class CacheExtPolicy(ExtPolicyBase):
    """One attached policy instance for one cgroup."""

    def __init__(self, machine: "Machine", memcg: MemCgroup,
                 ops: CacheExtOps) -> None:
        self.machine = machine
        self.memcg = memcg
        self.ops = ops
        self.name = ops.name
        nbuckets = memcg.limit_pages or DEFAULT_REGISTRY_BUCKETS
        self.registry = FolioRegistry(nbuckets)
        # Hot-path bindings: these objects are stable for the life of
        # the attachment, and _charge runs on every hook and kfunc.
        self._memcg_stats = memcg.stats
        self._cache_stats = machine.page_cache.stats
        self.lists: list[EvictionList] = []
        #: kfunc calls that returned an error (policy bug indicator).
        self.kfunc_errors = 0
        self.attached = False
        # Cached tracepoints (repro.obs): one attribute load + branch
        # per dispatch when tracing is off.
        trace = machine.trace
        self._tp_hook_entry = trace.tracepoint("cache_ext:hook_entry")
        self._tp_hook_exit = trace.tracepoint("cache_ext:hook_exit")
        self._tp_kfunc_error = trace.tracepoint("cache_ext:kfunc_error")
        self._tp_watchdog = trace.tracepoint("cache_ext:watchdog_detach")

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------
    def _charge(self, us: float) -> None:
        thread = current_thread()
        if thread is not None:
            thread.advance(us)
        self._memcg_stats.hook_cpu_us += us
        self._cache_stats.hook_cpu_us += us

    # charge_hook/charge_kfunc run once per hook dispatch and once per
    # kfunc call respectively; the _charge body is inlined rather than
    # delegated so the hot path costs one frame, not two.
    def charge_hook(self) -> None:
        us = self.machine.costs.bpf_hook_us
        thread = current_thread()
        if thread is not None:
            thread.advance(us)
            span = thread.span
            if span is not None:
                span.add("kfunc", us)
        self._memcg_stats.hook_cpu_us += us
        self._cache_stats.hook_cpu_us += us

    def charge_kfunc(self) -> None:
        us = self.machine.costs.kfunc_op_us
        thread = current_thread()
        if thread is not None:
            thread.advance(us)
            span = thread.span
            if span is not None:
                span.add("kfunc", us)
        self._memcg_stats.hook_cpu_us += us
        self._cache_stats.hook_cpu_us += us

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def _trace_point(self) -> tuple:
        thread = current_thread()
        if thread is not None:
            return thread.clock_us, thread.tid
        return self.machine.engine.now_us, 0

    def _hook_entry(self, slot: str):
        """Emit ``cache_ext:hook_entry``; returns the hook-CPU baseline
        consumed by the matching :meth:`_hook_exit` (``None`` when both
        hook tracepoints are disabled, so the common case costs two
        attribute loads and a branch)."""
        if not (self._tp_hook_entry.enabled or self._tp_hook_exit.enabled):
            return None
        ts, tid = self._trace_point()
        tp = self._tp_hook_entry
        if tp.enabled:
            tp.emit(ts, self.memcg.name, tid, slot=slot, policy=self.name)
        return self.memcg.stats.hook_cpu_us

    def _hook_exit(self, slot: str, cpu_base) -> None:
        """Emit ``cache_ext:hook_exit`` with the CPU charged between
        entry and exit (hook dispatch plus every kfunc the program
        ran)."""
        if cpu_base is None:
            return
        tp = self._tp_hook_exit
        if tp.enabled:
            ts, tid = self._trace_point()
            tp.emit(ts, self.memcg.name, tid, slot=slot, policy=self.name,
                    cpu_us=self.memcg.stats.hook_cpu_us - cpu_base)

    def note_kfunc_error(self, code: int, kfunc: str) -> None:
        """Record one kfunc error return: bumps the per-policy counter
        (kept for backwards compatibility), the cgroup and machine
        ``kfunc_errors`` stats, and emits ``cache_ext:kfunc_error``."""
        self.kfunc_errors += 1
        self.memcg.stats.kfunc_errors += 1
        self.machine.page_cache.stats.kfunc_errors += 1
        tp = self._tp_kfunc_error
        if tp.enabled:
            ts, tid = self._trace_point()
            tp.emit(ts, self.memcg.name, tid, kfunc=kfunc, code=code,
                    policy=self.name)

    # ------------------------------------------------------------------
    # watchdog
    # ------------------------------------------------------------------
    def _run_prog(self, prog, *args, default=None):
        """Invoke a policy program under the watchdog.

        A verified eBPF program cannot crash the kernel, but a policy
        can still misbehave at run time (bad map usage, helper misuse).
        Mirroring sched_ext's watchdog — which the paper points to as
        the model for handling misbehaving policies — a faulting
        program gets its whole policy forcibly detached and the cgroup
        falls back to the kernel's own eviction.
        """
        # Dispatch through prog.fn with the invocation bump done here:
        # the same observable behaviour as calling the BpfProgram, one
        # Python frame cheaper.  Plain callables (tests) lack ``fn``
        # and take the direct path.
        fn = getattr(prog, "fn", None)
        if fn is None:
            fn = prog
        else:
            prog.invocations += 1
        try:
            return fn(*args)
        except Exception as exc:
            self.memcg.stats.ext_policy_faults += 1
            self.machine.page_cache.stats.ext_policy_faults += 1
            self._watchdog_detach(reason=type(exc).__name__)
            return default

    def _watchdog_detach(self, reason: str = "fault") -> None:
        """Forcibly remove this policy (kernel-side, no loader help)."""
        if self.memcg.ext_policy is self:
            self.memcg.ext_policy = None
        self.attached = False
        self.memcg.stats.watchdog_detaches += 1
        self.machine.page_cache.stats.watchdog_detaches += 1
        tp = self._tp_watchdog
        if tp.enabled:
            ts, tid = self._trace_point()
            tp.emit(ts, self.memcg.name, tid, policy=self.name,
                    reason=reason)
        handle = getattr(self, "_struct_ops_handle", None)
        if handle is not None:
            self.machine.struct_ops.unregister(handle)
        for lst in self.lists:
            node = lst.pop_head()
            while node is not None:
                if node.item is not None:
                    node.item.ext_node = None
                node = lst.pop_head()

    # ------------------------------------------------------------------
    # list ownership
    # ------------------------------------------------------------------
    def create_list(self, name: str = "") -> EvictionList:
        lst = EvictionList(self, name or f"{self.name}-list{len(self.lists)}")
        self.lists.append(lst)
        return lst

    # ------------------------------------------------------------------
    # hook dispatch (ExtPolicyBase interface)
    # ------------------------------------------------------------------
    def admit(self, mapping: AddressSpace, index: int) -> bool:
        if self.ops.admit is None:
            return True
        cpu = self._hook_entry("admit")
        self.charge_hook()
        thread = current_thread()
        tid = thread.tid if thread is not None else 0
        verdict = bool(self._run_prog(self.ops.admit, mapping.file_id,
                                      index, tid, default=1))
        self._hook_exit("admit", cpu)
        return verdict

    def readahead_hint(self, mapping: AddressSpace, index: int,
                       seq_streak: int):
        if self.ops.readahead is None:
            return None
        cpu = self._hook_entry("readahead")
        self.charge_hook()
        pages = self._run_prog(self.ops.readahead, mapping.file_id,
                               index, seq_streak)
        self._hook_exit("readahead", cpu)
        if not isinstance(pages, int) or pages < 0:
            return None  # malformed hint: keep the kernel heuristic
        return pages

    # The three per-folio hooks below run on every cache access,
    # insertion and removal.  When both hook tracepoints are disabled
    # (the overwhelmingly common case) they skip the _hook_entry /
    # _hook_exit / charge_hook frames entirely; the charged cost and
    # dispatch order are identical on both paths.

    def folio_added(self, folio: Folio) -> None:
        # Registry first (memory safety), then the policy's program.
        self.registry.insert(folio)
        if not (self._tp_hook_entry.enabled or self._tp_hook_exit.enabled):
            us = self.machine.costs.bpf_hook_us
            thread = current_thread()
            if thread is not None:
                # inlined thread.advance(us): us is a configured cost,
                # never negative
                thread.clock_us += us
                thread.cpu_us += us
                span = thread.span
                if span is not None:
                    span.add("kfunc", us)
            self._memcg_stats.hook_cpu_us += us
            self._cache_stats.hook_cpu_us += us
            prog = self.ops.folio_added
            if prog is not None:
                # Inlined _run_prog (same dispatch, invocation bump and
                # watchdog handling, one frame cheaper).
                fn = getattr(prog, "fn", None)
                if fn is None:
                    fn = prog
                else:
                    prog.invocations += 1
                try:
                    fn(folio)
                except Exception as exc:
                    self.memcg.stats.ext_policy_faults += 1
                    self.machine.page_cache.stats.ext_policy_faults += 1
                    self._watchdog_detach(reason=type(exc).__name__)
            return
        cpu = self._hook_entry("folio_added")
        self.charge_hook()
        if self.ops.folio_added is not None:
            self._run_prog(self.ops.folio_added, folio)
        self._hook_exit("folio_added", cpu)

    def folio_accessed(self, folio: Folio) -> None:
        if not (self._tp_hook_entry.enabled or self._tp_hook_exit.enabled):
            us = self.machine.costs.bpf_hook_us
            thread = current_thread()
            if thread is not None:
                # inlined thread.advance(us): us is a configured cost,
                # never negative
                thread.clock_us += us
                thread.cpu_us += us
                span = thread.span
                if span is not None:
                    span.add("kfunc", us)
            self._memcg_stats.hook_cpu_us += us
            self._cache_stats.hook_cpu_us += us
            prog = self.ops.folio_accessed
            if prog is not None:
                # Inlined _run_prog (see folio_added).
                fn = getattr(prog, "fn", None)
                if fn is None:
                    fn = prog
                else:
                    prog.invocations += 1
                try:
                    fn(folio)
                except Exception as exc:
                    self.memcg.stats.ext_policy_faults += 1
                    self.machine.page_cache.stats.ext_policy_faults += 1
                    self._watchdog_detach(reason=type(exc).__name__)
            return
        cpu = self._hook_entry("folio_accessed")
        self.charge_hook()
        if self.ops.folio_accessed is not None:
            self._run_prog(self.ops.folio_accessed, folio)
        self._hook_exit("folio_accessed", cpu)

    def folio_removed(self, folio: Folio) -> None:
        # Kernel-side cleanup: detach the folio's eviction-list node and
        # drop the registry entry *before* the policy program runs, so a
        # buggy program cannot resurrect a stale reference.
        node = self.registry.remove(folio)
        if node is not None and node.owner is not None:
            node.owner.remove(node)
        folio.ext_node = None
        if not (self._tp_hook_entry.enabled or self._tp_hook_exit.enabled):
            us = self.machine.costs.bpf_hook_us
            thread = current_thread()
            if thread is not None:
                # inlined thread.advance(us): us is a configured cost,
                # never negative
                thread.clock_us += us
                thread.cpu_us += us
                span = thread.span
                if span is not None:
                    span.add("kfunc", us)
            self._memcg_stats.hook_cpu_us += us
            self._cache_stats.hook_cpu_us += us
            prog = self.ops.folio_removed
            if prog is not None:
                # Inlined _run_prog (see folio_added).
                fn = getattr(prog, "fn", None)
                if fn is None:
                    fn = prog
                else:
                    prog.invocations += 1
                try:
                    fn(folio)
                except Exception as exc:
                    self.memcg.stats.ext_policy_faults += 1
                    self.machine.page_cache.stats.ext_policy_faults += 1
                    self._watchdog_detach(reason=type(exc).__name__)
            return
        cpu = self._hook_entry("folio_removed")
        self.charge_hook()
        if self.ops.folio_removed is not None:
            self._run_prog(self.ops.folio_removed, folio)
        self._hook_exit("folio_removed", cpu)

    def folios_removed(self, folios: list[Folio]) -> None:
        """Batched removal dispatch (truncate/delete path).

        Per-folio semantics — registry removal, node unlink, one hook
        dispatch and charge, the policy's ``folio_removed`` program —
        are identical to looping :meth:`folio_removed`; the registry,
        program and charge machinery are simply bound once per batch
        instead of once per folio.
        """
        registry_remove = self.registry.remove
        charge_hook = self.charge_hook
        prog = self.ops.folio_removed
        trace_hooks = (self._tp_hook_entry.enabled
                       or self._tp_hook_exit.enabled)
        for folio in folios:
            node = registry_remove(folio)
            if node is not None and node.owner is not None:
                node.owner.remove(node)
            folio.ext_node = None
            cpu = self._hook_entry("folio_removed") if trace_hooks else None
            charge_hook()
            if prog is not None:
                self._run_prog(prog, folio)
            if trace_hooks:
                self._hook_exit("folio_removed", cpu)
            if not self.attached:
                # The program faulted and the watchdog detached us; the
                # remaining folios are no longer this policy's concern
                # (watchdog cleanup already emptied the lists).
                break

    def propose_candidates(self, nr: int) -> list[Folio]:
        if self.ops.evict_folios is None:
            return []
        ctx = EvictionCtx(nr)
        cpu = self._hook_entry("evict_folios")
        self.charge_hook()
        self._run_prog(self.ops.evict_folios, ctx, self.memcg)
        self._hook_exit("evict_folios", cpu)
        return list(ctx.candidates)

    def holds_reference(self, folio: Folio) -> bool:
        return self.registry.contains(folio)

    # ------------------------------------------------------------------
    def nr_listed(self) -> int:
        """Total folios across this policy's eviction lists."""
        return sum(len(lst) for lst in self.lists)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CacheExtPolicy({self.name!r}, cgroup={self.memcg.name!r}, "
                f"lists={len(self.lists)}, registry={len(self.registry)})")
