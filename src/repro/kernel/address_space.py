"""Per-file page-cache mappings (``struct address_space``).

In Linux the address_space's xarray maps file offsets to folios and,
after eviction, to *shadow entries* that enable refault-distance
computation.  We model the xarray with two dictionaries: one for
resident folios, one for shadow entries.
"""

from __future__ import annotations

from repro.snapshot import SnapshotFriendly
from typing import TYPE_CHECKING, Iterator, Optional

from repro.kernel.folio import Folio

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.shadow import ShadowEntry


class AddressSpace(SnapshotFriendly):
    """Maps page indices of one file to resident folios/shadow entries."""

    def __init__(self, file_id: int) -> None:
        self.file_id = file_id
        self._folios: dict[int, Folio] = {}
        self._shadows: dict[int, "ShadowEntry"] = {}

    # ------------------------------------------------------------------
    # resident folios
    # ------------------------------------------------------------------
    def lookup(self, index: int) -> Optional[Folio]:
        return self._folios.get(index)

    def insert(self, folio: Folio) -> None:
        if folio.index in self._folios:
            raise RuntimeError(
                f"mapping {self.file_id}: duplicate insert at {folio.index}")
        self._folios[folio.index] = folio
        # Insertion consumes any shadow entry at this offset; the caller
        # reads it first for refault detection.
        self._shadows.pop(folio.index, None)

    def remove(self, folio: Folio) -> None:
        present = self._folios.get(folio.index)
        if present is not folio:
            raise RuntimeError(
                f"mapping {self.file_id}: remove of non-resident folio")
        del self._folios[folio.index]
        folio.mapping = None

    def folios(self) -> Iterator[Folio]:
        """Iterate resident folios (snapshot; safe to mutate during)."""
        return iter(list(self._folios.values()))

    @property
    def nr_folios(self) -> int:
        return len(self._folios)

    # ------------------------------------------------------------------
    # shadow entries
    # ------------------------------------------------------------------
    def store_shadow(self, index: int, entry: "ShadowEntry") -> None:
        self._shadows[index] = entry

    def take_shadow(self, index: int) -> Optional["ShadowEntry"]:
        """Pop and return the shadow entry at ``index``, if any."""
        return self._shadows.pop(index, None)

    def peek_shadow(self, index: int) -> Optional["ShadowEntry"]:
        return self._shadows.get(index)

    @property
    def nr_shadows(self) -> int:
        return len(self._shadows)
