"""One facade for building machines and running experiments.

Before this module, driving the reproduction meant knowing several
layers by name: ``Machine(...)`` plus post-construction pokes
(``machine.fs.bulk_io_enabled``, ``machine.engine.burst_enabled``),
``harness.make_db_env`` for DB cells, ``<experiment>.plan()`` +
``parallel.execute(...)`` for sweeps, ``repro.replay.enable_replay``
for the fast path, ``machine.arm_faults`` for fault plans.  This
module collapses that to two entry points:

* :class:`MachineConfig` — a declarative machine description whose
  ``build()`` returns a ready :class:`~repro.kernel.machine.Machine`
  (kwargs that used to be scattered attribute pokes live here);
* :func:`run` — one call that takes an experiment (a name like
  ``"fig6"`` or a prepared
  :class:`~repro.experiments.harness.ExperimentSpec`), an execution
  ``mode`` (``"full"`` | ``"replay"`` | ``"scan"`` | ``"auto"``), an
  optional policy filter and an optional fault plan, and returns the
  merged :class:`~repro.experiments.parallel.ExecutionReport`.

Example::

    from repro import api

    report = api.run("fig6", quick=True, mode="replay")
    print(report.result.format_table())

    machine = api.MachineConfig(
        kernel_policy="mglru", disk={"read_us": 95.0, "channels": 2},
        cgroups=(("app", 1000),)).build()

Mode rules (enforced here and in :mod:`repro.replay`):

* ``mode="replay"`` runs replay-capable cells on the trace-replay
  fast path; payloads are bit-identical to the full engine.
* ``mode="scan"`` runs scan-capable sweeps on the approximate
  decision-level stepper (:mod:`repro.scan`) — one multi-cell pass
  per shared stream; hit ratios land within a documented tolerance,
  timing/latency columns are decision-level virtual time.  Anything
  that needs the engine — ``faults``, ``trace``, ``breakdown`` —
  raises :class:`repro.scan.ScanUnsupportedError`.
* ``faults`` requires the full engine — combining a fault plan with
  ``mode="replay"`` raises, and ``mode="auto"`` quietly falls back.
* ``breakdown`` (latency attribution) likewise needs the full engine.
* ``snapshot=True`` restores each snapshot-capable cell from one
  shared post-load machine image (:mod:`repro.snapshot`) instead of
  re-running the load — byte-identical tables; combining with
  ``faults`` raises (``snapshot="auto"`` falls back to cold builds).
* ``timeseries`` (continuous telemetry frames,
  :mod:`repro.obs.timeseries`) also needs the full engine —
  ``mode="replay"`` raises, ``mode="scan"`` raises, ``"auto"`` falls
  back; it composes with both ``faults`` and ``snapshot``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.kernel.machine import Machine


@dataclass(frozen=True)
class MachineConfig:
    """Declarative description of one simulated host.

    Consolidates every knob that used to be a constructor kwarg or a
    post-construction attribute poke:

    * ``kernel_policy`` — ``"default"`` or ``"mglru"`` (Machine kwarg);
    * ``disk`` — :class:`~repro.kernel.block.BlockDevice` kwargs, e.g.
      ``{"read_us": 95.0, "write_us": 30.0, "channels": 2}``;
    * ``costs`` — a :class:`~repro.sim.resources.CpuCosts` override;
    * ``bulk_io_enabled`` — batched sequential reads in the VFS
      (previously ``machine.fs.bulk_io_enabled = ...``);
    * ``burst_enabled`` — the engine's burst-scheduling fast path
      (previously ``machine.engine.burst_enabled = ...``);
    * ``mode`` — ``"full"``, ``"replay"``, or ``"scan"`` (both of the
      latter apply :func:`repro.replay.enable_replay` before anything
      else touches the machine; the scan stepper drives a
      replay-trimmed machine);
    * ``cgroups`` — ``(name, limit_pages)`` pairs created at build.

    Frozen, so one config can stamp out any number of machines (use
    ``dataclasses.replace`` to vary a field).
    """

    kernel_policy: str = "default"
    disk: Optional[dict] = None
    costs: Optional[object] = None
    bulk_io_enabled: bool = True
    burst_enabled: bool = True
    mode: str = "full"
    cgroups: tuple = ()

    def build(self) -> Machine:
        from repro.kernel.block import BlockDevice
        if self.mode not in ("full", "replay", "scan"):
            raise ValueError(f"unknown machine mode {self.mode!r}")
        machine = Machine(
            kernel_policy=self.kernel_policy,
            disk=BlockDevice(**self.disk) if self.disk else None,
            costs=self.costs)
        if self.mode in ("replay", "scan"):
            from repro.replay import enable_replay
            enable_replay(machine)
        machine.fs.bulk_io_enabled = self.bulk_io_enabled
        machine.engine.burst_enabled = self.burst_enabled
        for name, limit_pages in self.cgroups:
            machine.new_cgroup(name, limit_pages=limit_pages)
        return machine


def _resolve_spec(spec, quick: bool):
    if isinstance(spec, str):
        import importlib
        module = importlib.import_module(f"repro.experiments.{spec}")
        if not hasattr(module, "plan"):
            raise ValueError(f"experiment {spec!r} has no plan()")
        return module.plan(quick=quick)
    return spec


def run(spec: Union[str, object], *, mode: str = "full",
        policy: Optional[str] = None, faults=None, quick: bool = False,
        jobs: Optional[int] = None, serial: Optional[bool] = None,
        trace: bool = False, breakdown: bool = False,
        timeout_s: Optional[float] = None, snapshot=False,
        timeseries=False):
    """Run one experiment end to end; returns the
    :class:`~repro.experiments.parallel.ExecutionReport` (merged table
    in ``.result``, per-cell timings, trace counts, breakdowns).

    Parameters
    ----------
    spec:
        An experiment name (``"fig6"``, ``"table3"``, ...) resolved
        through ``repro.experiments.<name>.plan(quick=quick)``, or a
        prepared :class:`~repro.experiments.harness.ExperimentSpec`.
    mode:
        ``"full"`` (reference engine), ``"replay"`` (trace-replay fast
        path for cells that opt in — bit-identical payloads),
        ``"scan"`` (approximate decision-level stepper, one multi-cell
        pass per shared stream — hit ratios within a documented
        tolerance; refuses ``faults``/``trace``/``breakdown`` with
        :class:`repro.scan.ScanUnsupportedError`), or ``"auto"``
        (replay unless ``trace``/``breakdown``/``faults`` need the
        full instrumentation; scan only when the spec declares itself
        hit-ratio-only).
    policy:
        Only run cells whose id matches this policy (grid cell ids are
        ``workload/policy``); any :func:`fnmatch` glob also works.
    faults:
        A :class:`~repro.faults.plan.FaultPlan` armed on every machine
        the cells build.  Requires the full engine: combined with
        ``mode="replay"`` this raises, with ``"auto"`` it falls back.
    serial:
        Defaults to ``jobs is None`` — no explicit job count means
        in-process serial execution (the reference behaviour).
    snapshot:
        ``False`` (cold builds, the reference behaviour), ``True``
        (snapshot-capable cells restore one shared post-load machine
        image per sweep instead of re-running the load — byte-identical
        tables, see :mod:`repro.snapshot`), or ``"auto"`` (snapshots
        unless a fault plan needs pristine cold builds).  Combining
        ``snapshot=True`` with ``faults`` raises: a captured image
        cannot carry armed fault state.
    timeseries:
        ``False`` (no sampling, the zero-cost default), ``True``
        (continuous telemetry frames at the default 10 ms virtual
        cadence), or a sample interval in virtual µs.  Frames land in
        ``report.timeseries`` (export with
        :func:`repro.experiments.parallel.timeseries_jsonl`, analyze
        with :mod:`repro.obs.analyze`).  Needs the full engine:
        ``mode="replay"`` raises ``ValueError``, ``mode="scan"``
        raises :class:`repro.scan.ScanUnsupportedError`, ``"auto"``
        falls back to the full engine.  Composes with ``faults`` (the
        sampler chains behind the fault-plan observer, so the injected
        windows appear in the frames' ``active_faults`` column) and
        with ``snapshot`` (frames are byte-identical cold vs
        restored).
    """
    from repro.experiments import harness
    from repro.experiments.parallel import (DEFAULT_TIMEOUT_S, execute,
                                            filter_cells)
    resolved = _resolve_spec(spec, quick)
    if policy is not None:
        pattern = policy if any(ch in policy for ch in "*?[") \
            else f"*/{policy}"
        resolved = filter_cells(resolved, pattern)
    if serial is None:
        serial = jobs is None
    if timeout_s is None:
        timeout_s = DEFAULT_TIMEOUT_S
    observer = None
    if faults is not None:
        if mode == "scan":
            from repro.scan import ScanUnsupportedError
            raise ScanUnsupportedError(
                "mode='scan' cannot honor faults=: the decision-level "
                "stepper drops the engine paths fault plans hook; use "
                "mode='full' (or mode='auto', which falls back to the "
                "full engine when a fault plan is armed)")
        if mode == "replay":
            raise ValueError(
                "fault injection needs the full engine; replay mode "
                "strips the paths fault plans hook (use mode='full' "
                "or mode='auto')")
        if trace or breakdown:
            raise ValueError(
                "faults cannot be combined with trace/breakdown: both "
                "claim the per-cell machine observer")
        if snapshot in (True, "on"):
            raise ValueError(
                "fault injection cannot ride on snapshot restores: a "
                "captured image must be quiescent, and cold builds arm "
                "the plan before the load phase (use snapshot=False "
                "or snapshot='auto')")
        mode = "full"
        snapshot = False  # "auto" falls back to cold builds

        def observer(machine):
            machine.arm_faults(faults)

    previous = harness.set_cell_observer(observer) \
        if observer is not None else None
    try:
        return execute(resolved, jobs=jobs, serial=serial,
                       timeout_s=timeout_s, trace=trace,
                       breakdown=breakdown, mode=mode,
                       snapshot=snapshot, timeseries=timeseries)
    finally:
        if observer is not None:
            harness.set_cell_observer(previous)
