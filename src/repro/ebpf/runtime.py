"""BPF program objects, helpers and the syscall-program analogue."""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional

from repro.ebpf.errors import ProgramError


class BpfProgram:
    """A loadable BPF program wrapping a restricted Python function.

    Attributes
    ----------
    allow_loops:
        Whether the verifier accepts backward jumps in this program.
        The kfunc layer still bounds all list iteration.
    verified:
        Set by :func:`repro.ebpf.verifier.verify_program`; the cache_ext
        loader refuses to attach unverified programs.
    invocations:
        Run-time call counter, used by the overhead experiments.
    """

    __bpf_program__ = True

    def __init__(self, fn: Callable, allow_loops: bool = False,
                 name: Optional[str] = None) -> None:
        self.fn = fn
        self.allow_loops = allow_loops
        self.name = name or fn.__name__
        self.verified = False
        self.invocations = 0
        functools.update_wrapper(self, fn)

    def __call__(self, *args: Any) -> Any:
        self.invocations += 1
        return self.fn(*args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "verified" if self.verified else "unverified"
        return f"BpfProgram({self.name!r}, {state})"


def bpf_program(fn: Optional[Callable] = None, *,
                allow_loops: bool = False,
                name: Optional[str] = None):
    """Decorator declaring a function as a BPF program.

    Usage::

        @bpf_program
        def lfu_folio_added(folio): ...

        @bpf_program(allow_loops=True)
        def lhd_reconfigure(): ...
    """
    def wrap(f: Callable) -> BpfProgram:
        return BpfProgram(f, allow_loops=allow_loops, name=name)

    if fn is not None:
        return wrap(fn)
    return wrap


def bpf_helper(fn: Callable) -> Callable:
    """Mark a callable as a stable BPF helper (callable from programs)."""
    fn.__bpf_helper__ = True
    return fn


def bpf_kfunc(fn: Callable) -> Callable:
    """Mark a callable as a kfunc (kernel function exposed to BPF)."""
    fn.__bpf_kfunc__ = True
    return fn


def run_syscall_prog(prog: BpfProgram, *args: Any) -> Any:
    """Run a program BPF_PROG_TYPE_SYSCALL-style.

    Userspace invokes these without attaching them to a hook; the LHD
    policy uses one for its periodic reconfiguration step (§5.2), which
    is too expensive for the page-cache hot path.
    """
    if not isinstance(prog, BpfProgram):
        raise ProgramError("run_syscall_prog requires a BpfProgram")
    if not prog.verified:
        raise ProgramError(
            f"program {prog.name!r} must be verified before syscall run")
    return prog(*args)
