"""Workload generators.

* :mod:`repro.workloads.distributions` — YCSB-spec key choosers
  (zipfian, scrambled zipfian, latest, uniform);
* :mod:`repro.workloads.ycsb` — YCSB core workloads A-F plus the
  paper's uniform and uniform-R/W variants, driven against the LSM DB;
* :mod:`repro.workloads.twitter` — synthetic per-cluster profiles
  standing in for the (non-redistributable) Twitter production traces;
* :mod:`repro.workloads.getscan` — the 99.95% GET / 0.05% SCAN mix of
  §6.1.4 with its separate scan thread pool.
"""

from repro.workloads.distributions import (LatestGenerator,
                                           ScrambledZipfianGenerator,
                                           UniformGenerator,
                                           ZipfianGenerator)
from repro.workloads.getscan import GetScanResult, GetScanWorkload
from repro.workloads.twitter import CLUSTERS, ClusterProfile, TwitterRunner
from repro.workloads.ycsb import YCSB_WORKLOADS, YcsbResult, YcsbRunner

__all__ = [
    "UniformGenerator", "ZipfianGenerator", "ScrambledZipfianGenerator",
    "LatestGenerator", "YCSB_WORKLOADS", "YcsbRunner", "YcsbResult",
    "CLUSTERS", "ClusterProfile", "TwitterRunner",
    "GetScanWorkload", "GetScanResult",
]
