"""S3-FIFO eviction policy (§5.1 of the paper).

Three FIFO structures:

* a **small** FIFO (~10% of folios) that new folios enter, filtering
  out "one-hit wonders";
* a **main** FIFO (~90%) for folios that earn promotion;
* a **ghost** FIFO of recently-evicted keys, implemented — exactly as
  the paper does — with a ``BPF_MAP_TYPE_LRU_HASH`` whose automatic
  LRU-order eviction bounds the ghost set.

Ghost entries are keyed on (file, offset), not folio pointers, because
"folio pointers ... are not persistent across evictions".

Eviction requests double as list balancing: while the small list is
over its 10% target, folios with access frequency > 1 are promoted to
the main tail, others are proposed for eviction and rotated so they
are not reconsidered.  Main-list eviction takes folios whose frequency
has decayed to zero, decrementing and rotating the rest.
"""

from __future__ import annotations

from repro.cache_ext.kfuncs import (ITER_EVICT, ITER_MOVE, ITER_ROTATE,
                                    MODE_SIMPLE, folio_key, list_add,
                                    list_create, list_iterate, list_size)
from repro.cache_ext.ops import CacheExtOps
from repro.ebpf.maps import ArrayMap, HashMap, LruHashMap
from repro.ebpf.runtime import bpf_program

#: Target share of folios on the small FIFO, in percent.
SMALL_TARGET_PCT = 10
#: Frequency cap (the original S3-FIFO caps counts at 3).
FREQ_CAP = 3


def make_s3fifo_policy(map_entries: int = 65536,
                       ghost_entries: int = 8192) -> CacheExtOps:
    """Build an S3-FIFO policy instance.

    ``ghost_entries`` should approximate the cgroup's page capacity
    (the ghost FIFO in S3-FIFO is sized like the main cache).
    """
    freq_map = HashMap(max_entries=map_entries, name="s3fifo_freq")
    ghost = LruHashMap(max_entries=ghost_entries, name="s3fifo_ghost")
    bss = ArrayMap(2, name="s3fifo_bss")  # [0]=small list, [1]=main list

    @bpf_program
    def s3fifo_policy_init(memcg):
        small = list_create(memcg)
        main = list_create(memcg)
        if small < 0 or main < 0:
            return -1
        bss.update(0, small)
        bss.update(1, main)
        return 0

    @bpf_program
    def s3fifo_folio_added(folio):
        key = folio_key(folio)
        if ghost.lookup(key) is not None:
            # Readmission of a recently evicted folio: straight to main.
            ghost.delete(key)
            list_add(bss.lookup(1), folio, True)
        else:
            list_add(bss.lookup(0), folio, True)
        freq_map.update(folio.id, 0)

    @bpf_program
    def s3fifo_folio_accessed(folio):
        freq = freq_map.lookup(folio.id)
        if freq is not None and freq < FREQ_CAP:
            freq_map.update(folio.id, freq + 1)

    @bpf_program
    def s3fifo_small_cb(i, folio):
        freq = freq_map.lookup(folio.id)
        if freq is not None and freq > 1:
            freq_map.update(folio.id, 0)
            return ITER_MOVE  # promote to the main list's tail
        return ITER_EVICT     # propose + rotate out of the way

    @bpf_program
    def s3fifo_main_cb(i, folio):
        freq = freq_map.lookup(folio.id)
        if freq is None or freq <= 0:
            return ITER_EVICT
        freq_map.update(folio.id, freq - 1)  # second-chance decay
        return ITER_ROTATE

    @bpf_program
    def s3fifo_evict_folios(ctx, memcg):
        small = bss.lookup(0)
        main = bss.lookup(1)
        nr_small = list_size(small)
        total = nr_small + list_size(main)
        if total <= 0:
            return 0
        if nr_small * 100 > total * SMALL_TARGET_PCT:
            # Small list over target: filter it (evictions + promotions
            # both shrink it towards 10%).
            list_iterate(memcg, small, s3fifo_small_cb, ctx,
                         MODE_SIMPLE, 0, main)
        if ctx.nr_candidates_proposed < ctx.nr_candidates_requested:
            list_iterate(memcg, main, s3fifo_main_cb, ctx, MODE_SIMPLE)
        return 0

    @bpf_program
    def s3fifo_folio_removed(folio):
        # Leave a ghost entry so a quick readmission goes to main; the
        # LRU_HASH silently retires the oldest ghost when full.
        ghost.update(folio_key(folio), 1)
        freq_map.delete(folio.id)

    return CacheExtOps(
        name="s3fifo",
        policy_init=s3fifo_policy_init,
        evict_folios=s3fifo_evict_folios,
        folio_added=s3fifo_folio_added,
        folio_accessed=s3fifo_folio_accessed,
        folio_removed=s3fifo_folio_removed,
        user_maps={"ghost": ghost, "freq": freq_map},
    )
