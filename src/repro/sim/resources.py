"""Shared hardware resources: the block device and CPU cost constants.

The paper's testbed is a CloudLab c6525-25g node with a 480 GB SATA/SAS
SSD.  We model the device as ``channels`` independent service channels
(an SSD's internal parallelism) with fixed per-page service times.
Requests issued by simulated threads are assigned to the
earliest-available channel; a thread's virtual clock is advanced past
both the queueing delay and the service time, so concurrent workloads
contend exactly as they would on real hardware.

Default service times are loosely calibrated to an enterprise SATA SSD
(~100 us 4 KiB random read, ~30 us write into the device write cache)
but absolute values only scale the results; orderings are driven by hit
ratios.
"""

from __future__ import annotations

from repro.snapshot import SnapshotFriendly
from dataclasses import dataclass, field

from repro.sim.engine import SimThread


@dataclass
class CpuCosts(SnapshotFriendly):
    """CPU cost model, in microseconds, charged to the running thread.

    These mirror the cost structure that produces the paper's overhead
    tables: page-cache bookkeeping is cheap, BPF hook dispatch adds a
    small constant, and ring-buffer notification to userspace (the
    userspace-dispatch strawman of Table 1) is comparatively expensive.
    """

    #: Page-cache hit: mapping lookup plus flag updates.
    cache_hit_us: float = 0.8
    #: Extra kernel work on a miss (allocation, insertion, readahead
    #: bookkeeping), excluding device time.
    cache_miss_us: float = 2.0
    #: One eviction (list surgery, shadow entry, unmapping).
    evict_us: float = 1.0
    #: Dispatching one cache_ext eBPF hook (~30ns: a retpoline-safe
    #: indirect call plus program prologue; Table 4's no-op overhead).
    bpf_hook_us: float = 0.03
    #: One eviction-list kfunc operation (hash lookup + list surgery).
    kfunc_op_us: float = 0.02
    #: Syscall entry/exit + VFS dispatch per read/write call.
    syscall_us: float = 1.2
    #: Reserving + committing one ring-buffer event (Table 1 strawman).
    ringbuf_event_us: float = 1.6
    #: Userspace work per key-value operation, outside the kernel.
    app_op_us: float = 6.0
    #: Searching one 4 KiB page of text (ripgrep-style SIMD scan).
    search_page_us: float = 0.7


@dataclass
class DiskStats(SnapshotFriendly):
    """Cumulative I/O accounting, used for Figure 7's total-disk-I/O axis."""

    reads: int = 0
    writes: int = 0
    read_pages: int = 0
    write_pages: int = 0
    busy_us: float = 0.0
    #: Requests that completed with an injected error (EIO/timeout);
    #: not counted in reads/writes — the transfer never succeeded.
    errors: int = 0

    @property
    def total_pages(self) -> int:
        return self.read_pages + self.write_pages

    @property
    def total_bytes(self) -> int:
        return self.total_pages * 4096


@dataclass(frozen=True)
class IoCompletion:
    """Timing of one completed block request (block tracepoint payload).

    ``latency_us`` is what the issuing thread experienced: queueing
    delay behind busy channels plus device service time.
    """

    issue_us: float
    wait_us: float
    service_us: float
    done_us: float
    queue_depth: int

    @property
    def latency_us(self) -> float:
        return self.wait_us + self.service_us


@dataclass
class Disk:
    """A multi-channel block device with per-page service times.

    Parameters
    ----------
    read_us / write_us:
        Service time for one 4 KiB page.
    channels:
        Internal parallelism; requests pick the earliest-free channel.
    seq_factor:
        Discount applied to pages after the first in a multi-page
        request, modelling sequential-access efficiency.  Sequential
        scans therefore cost less per page than random reads, as on a
        real SSD.
    """

    read_us: float = 100.0
    write_us: float = 30.0
    channels: int = 8
    seq_factor: float = 0.25
    stats: DiskStats = field(default_factory=DiskStats)

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError("disk needs at least one channel")
        self._free_at = [0.0] * self.channels

    def _service_us(self, base_us: float, npages: int,
                    contiguous: bool = False) -> float:
        if npages <= 0:
            raise ValueError(f"invalid page count: {npages}")
        if contiguous:
            # Continuation of an in-flight sequential stream (e.g.
            # direct-I/O page reads at consecutive offsets): every page
            # is priced at the sequential rate.
            return base_us * self.seq_factor * npages
        return base_us + base_us * self.seq_factor * (npages - 1)

    def _submit(self, thread: SimThread, service_us: float) -> "IoCompletion":
        """Queue one request from ``thread`` and block it to completion.

        Returns an :class:`IoCompletion` describing the request's
        timing, which the block layer's tracepoints consume.
        """
        issue_us = thread.clock_us
        # Channel scan at C speed: min() finds the earliest-available
        # time, .index() the first channel holding it (same tie-break
        # as a first-min loop), and the generator counts channels still
        # busy at issue for the observed queue depth.
        free_at = self._free_at
        best = min(free_at)
        idx = free_at.index(best)
        depth = sum(1 for t in free_at if t > issue_us)
        start = issue_us if best <= issue_us else best
        done = start + service_us
        free_at[idx] = done
        self.stats.busy_us += service_us
        # Inlined thread.wait_until(done).
        if done > thread.clock_us:
            thread.clock_us = done
        # Latency attribution: charge queueing and service explicitly
        # — unless a section (reclaim/fsync) is open, in which case the
        # I/O folds into that section's stall (repro.obs.spans).
        span = thread.span
        if span is not None and span.section is None:
            wait = start - issue_us
            if wait > 0.0:
                span.add("device_wait", wait)
            span.add("device_service", service_us)
        return IoCompletion(issue_us=issue_us, wait_us=start - issue_us,
                            service_us=service_us, done_us=done,
                            queue_depth=depth)

    def read(self, thread: SimThread, npages: int = 1,
             contiguous: bool = False) -> "IoCompletion":
        """Synchronously read ``npages`` pages; ``contiguous`` marks a
        continuation of a sequential stream (cheaper per page)."""
        # Single-random-page reads dominate cache-miss traffic; they
        # need no per-page discount arithmetic, so skip the helper.
        if npages == 1 and not contiguous:
            service_us = self.read_us
        else:
            service_us = self._service_us(self.read_us, npages, contiguous)
        completion = self._submit(thread, service_us)
        self.stats.reads += 1
        self.stats.read_pages += npages
        return completion

    def write(self, thread: SimThread, npages: int = 1,
              contiguous: bool = False) -> "IoCompletion":
        """Synchronously write ``npages`` pages (see :meth:`read`)."""
        if npages == 1 and not contiguous:
            service_us = self.write_us
        else:
            service_us = self._service_us(self.write_us, npages, contiguous)
        completion = self._submit(thread, service_us)
        self.stats.writes += 1
        self.stats.write_pages += npages
        return completion

    def busy_channels(self, now_us: float) -> int:
        """Channels still servicing a request at ``now_us`` — the
        instantaneous queue-depth gauge the telemetry sampler records
        (same definition as ``IoCompletion.queue_depth`` at issue)."""
        return sum(1 for t in self._free_at if t > now_us)

    def reset_stats(self) -> None:
        self.stats = DiskStats()
