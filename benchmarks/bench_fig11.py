"""Figure 11 — per-cgroup policy isolation benchmark."""

from repro.experiments import fig11

from conftest import run_once

SCALE = {"nkeys": 20000, "ycsb_cgroup_pages": 500,
         "search_files": 200, "search_cgroup_frac": 0.7,
         "window_s": 2.0, "nthreads": 4}


def test_fig11_isolation(benchmark, record_table):
    result = run_once(benchmark, lambda: fig11.run(scale=SCALE))
    record_table(result)
    rows = {r[0]: dict(zip(result.headers, r)) for r in result.rows}
    tailored = rows["tailored lfu+mru"]
    # The tailored per-cgroup setup beats the baseline on BOTH axes
    # (paper: +49.8% YCSB, +79.4% search).
    assert tailored["ycsb_vs_baseline_pct"] > 5.0
    assert tailored["search_vs_baseline_pct"] > 30.0
    # Global single-policy configs sacrifice one workload.
    assert rows["mru/mru"]["ycsb_vs_baseline_pct"] < 0.0
    assert rows["lfu/lfu"]["search_vs_baseline_pct"] < \
        tailored["search_vs_baseline_pct"]
