"""Figure 8 — Twitter cluster traces: no single policy wins."""

from repro.experiments import fig8

from conftest import run_once

SCALE = {"nkeys": 20000, "cgroup_pages": 500, "nops": 20000,
         "warmup_ops": 12000}


def test_fig8_twitter_clusters(benchmark, record_table):
    result = run_once(benchmark, lambda: fig8.run(scale=SCALE))
    record_table(result)
    winners = {}
    spreads = {}
    for cluster in (17, 18, 24, 34, 52):
        rows = result.find_rows(cluster=cluster)
        best = max(rows, key=lambda r: r["ops_per_sec"])
        worst = min(rows, key=lambda r: r["ops_per_sec"])
        winners[cluster] = best["policy"]
        spreads[cluster] = (best["ops_per_sec"]
                            / max(worst["ops_per_sec"], 1e-9))
    # Takeaway 2: there is no one-size-fits-all policy.
    assert len(set(winners.values())) >= 2, winners
    # The policy choice matters: every cluster shows a real spread.
    assert all(s > 1.1 for s in spreads.values()), spreads
