"""Experiment harness smoke tests + loose shape assertions.

These run every table/figure module at quick scale and check the
*structure* of the results plus the most robust qualitative claims
(e.g., MRU wins file search, the no-op overhead is small).  The full
calibrated shapes are recorded in EXPERIMENTS.md from full-scale runs.
"""

import pytest

from repro.experiments import (admission, fig6, fig7, fig8, fig9, fig10,
                               fig11, table1, table3, table4, table5)
from repro.experiments.harness import ExperimentResult


class TestHarnessResult:
    def test_row_width_enforced(self):
        res = ExperimentResult("t", headers=["a", "b"])
        with pytest.raises(ValueError):
            res.add_row(1)

    def test_column_and_find(self):
        res = ExperimentResult("t", headers=["policy", "value"])
        res.add_row("lfu", 10)
        res.add_row("mru", 5)
        assert res.column("value") == [10, 5]
        assert res.find_rows(policy="mru")[0]["value"] == 5

    def test_format_table_renders(self):
        res = ExperimentResult("t", headers=["a"])
        res.add_row(1.5)
        res.notes.append("hello")
        text = res.format_table()
        assert "== t ==" in text
        assert "hello" in text


class TestTable1:
    def test_rows_and_direction(self):
        res = table1.run(quick=True)
        assert res.column("workload") == ["YCSB A", "YCSB C", "Uniform",
                                          "Search"]
        # The KV rows must show degradation (negative percentages).
        degradations = res.column("degradation_pct")
        assert sum(1 for d in degradations if d < 0) >= 2


class TestFig6:
    def test_shape_on_ycsb_c(self):
        res = fig6.run(quick=True, workloads=("C",),
                       policies=("default", "mru", "lfu"))
        tput = {row[1]: row[2] for row in res.rows}
        # The most robust ordering facts: MRU is pathological on
        # zipfian point reads; LFU at least matches the default.
        assert tput["mru"] < tput["default"]
        assert tput["lfu"] >= tput["default"] * 0.95

    def test_all_columns_present(self):
        res = fig6.run(quick=True, workloads=("C",),
                       policies=("default",))
        row = res.row_dict(0)
        assert set(row) == {"workload", "policy", "ops_per_sec",
                            "p99_read_us", "hit_ratio", "disk_pages"}


class TestFig7:
    def test_inverse_relationship(self):
        res = fig7.run(quick=True, workloads=("C",),
                       policies=("default", "mru", "lfu", "fifo"))
        rows = res.find_rows(workload="C")
        by_policy = {r["policy"]: r for r in rows}
        # MRU reads far more disk and achieves less throughput.
        assert by_policy["mru"]["disk_pages"] > \
            by_policy["lfu"]["disk_pages"]
        assert by_policy["mru"]["ops_per_sec"] < \
            by_policy["lfu"]["ops_per_sec"]

    def test_spearman_helper(self):
        assert fig7.spearman_rank_correlation(
            [1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)
        assert fig7.spearman_rank_correlation(
            [1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)


class TestFig8:
    def test_no_single_winner(self):
        res = fig8.run(quick=True, clusters=(24, 52),
                       policies=("default", "lfu", "lhd"))
        assert len(res.rows) == 6
        assert all(r[2] > 0 for r in res.rows)


class TestFig9:
    def test_mru_wins_file_search(self):
        res = fig9.run(quick=True)
        rows = {r[0]: r for r in res.rows}
        assert rows["mru"][1] < rows["default"][1]  # faster
        assert rows["mru"][4] > 1.3  # speedup well above 1x


class TestFig10:
    def test_get_scan_policy_improves_gets(self):
        res = fig10.run(quick=True, variants=(
            ("default", "default", None),
            ("cache_ext-get-scan", "get-scan", None)))
        rows = {r[0]: r for r in res.rows}
        assert rows["cache_ext-get-scan"][1] > rows["default"][1]


class TestAdmission:
    def test_filter_reduces_tail_latency(self):
        res = admission.run(quick=True)
        rows = {r[0]: r for r in res.rows}
        assert rows["admission-filter"][3] > 0  # rejects happened
        assert rows["admission-filter"][2] <= rows["baseline"][2] * 1.05


class TestFig11:
    def test_tailored_configuration_wins_both(self):
        res = fig11.run(quick=True)
        rows = {r[0]: r for r in res.rows}
        tailored = rows["tailored lfu+mru"]
        base = rows["default/default"]
        assert tailored[1] > base[1]      # YCSB improves
        assert tailored[2] > base[2]      # search improves
        # Global MRU hurts YCSB; global LFU hurts search relative to
        # the tailored setup.
        assert rows["mru/mru"][1] < base[1]


class TestTable3:
    def test_loc_ordering_matches_paper(self):
        res = table3.run()
        loc = {r[0]: r[1] for r in res.rows}
        assert min(loc, key=loc.get) == "admission-filter"
        assert max(loc, key=loc.get) in ("mglru-bpf", "lhd")
        assert all(1 <= v <= 1000 for v in loc.values())

    def test_paper_columns_included(self):
        res = table3.run()
        row = res.row_dict(0)
        assert row["paper_bpf_loc"] == 35


class TestTable4:
    def test_noop_overhead_is_small(self):
        res = table4.run(quick=True)
        for overhead in res.column("overhead_pct"):
            assert 0 <= overhead < 8.0
        for mem in res.column("registry_mem_pct"):
            assert mem == pytest.approx(1.17, abs=0.01)


class TestTable5:
    def test_bpf_port_tracks_native(self):
        res = table5.run(quick=True, workloads=("C", "uniform"))
        for ratio in res.column("relative"):
            assert 0.7 < ratio < 1.3
