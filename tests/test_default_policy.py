"""Default two-list LRU policy: the §2.1 / Figure 1 behaviours."""

from repro.kernel.address_space import AddressSpace
from repro.kernel.cgroup import MemCgroup
from repro.kernel.default_policy import DefaultLruPolicy
from repro.kernel.folio import Folio


def setup_policy(limit=100):
    cg = MemCgroup("t", limit_pages=limit)
    policy = DefaultLruPolicy(cg)
    cg.kernel_policy = policy
    mapping = AddressSpace(1)
    return cg, policy, mapping


def insert(policy, mapping, cg, index, refault=False):
    folio = Folio(mapping, index, cg)
    mapping.insert(folio)
    policy.folio_inserted(folio, refault_activate=refault)
    return folio


class TestInsertion:
    def test_new_folio_joins_inactive_tail(self):
        cg, policy, mapping = setup_policy()
        a = insert(policy, mapping, cg, 0)
        b = insert(policy, mapping, cg, 1)
        assert policy.inactive.items() == [a, b]
        assert policy.active.empty
        assert not a.active

    def test_refault_activation_goes_active(self):
        cg, policy, mapping = setup_policy()
        folio = insert(policy, mapping, cg, 0, refault=True)
        assert policy.active.items() == [folio]
        assert folio.active
        assert folio.workingset


class TestTwoTouchPromotion:
    def test_first_access_sets_referenced_only(self):
        cg, policy, mapping = setup_policy()
        folio = insert(policy, mapping, cg, 0)
        policy.folio_accessed(folio)
        assert folio.referenced
        assert not folio.active
        assert policy.active.empty

    def test_second_access_promotes(self):
        cg, policy, mapping = setup_policy()
        folio = insert(policy, mapping, cg, 0)
        policy.folio_accessed(folio)
        policy.folio_accessed(folio)
        assert folio.active
        assert not folio.referenced
        assert policy.active.items() == [folio]

    def test_active_access_just_rereferences(self):
        cg, policy, mapping = setup_policy()
        folio = insert(policy, mapping, cg, 0, refault=True)
        policy.folio_accessed(folio)
        assert folio.referenced
        assert policy.active.items() == [folio]


class TestEvictionOrder:
    def test_evicts_inactive_head_first(self):
        cg, policy, mapping = setup_policy()
        folios = [insert(policy, mapping, cg, i) for i in range(5)]
        candidates = policy.evict_candidates(2)
        assert candidates == [folios[0], folios[1]]

    def test_referenced_folio_gets_one_rotation(self):
        cg, policy, mapping = setup_policy()
        folios = [insert(policy, mapping, cg, i) for i in range(3)]
        policy.folio_accessed(folios[0])  # referenced, still inactive
        candidates = policy.evict_candidates(1)
        assert candidates == [folios[1]]
        assert not folios[0].referenced  # chance consumed

    def test_balancing_demotes_active_head(self):
        cg, policy, mapping = setup_policy()
        # 4 active, 0 inactive -> balancing must demote to 50/50.
        folios = [insert(policy, mapping, cg, i, refault=True)
                  for i in range(4)]
        for folio in folios:
            policy.folio_accessed(folio)  # referenced while active
        candidates = policy.evict_candidates(1)
        # Demotion is head-first and ignores the referenced bit (the
        # paper's observation: no second chance during shrinking).
        demoted = [f for f in folios if not f.active]
        assert len(demoted) == 2
        assert folios[0] in demoted
        assert candidates  # eviction proceeded from the demoted folios

    def test_candidates_rotate_to_tail(self):
        cg, policy, mapping = setup_policy()
        folios = [insert(policy, mapping, cg, i) for i in range(3)]
        policy.evict_candidates(1)
        # Proposed candidate moved to the tail so a failed eviction
        # doesn't stall the scan.
        assert policy.inactive.items()[-1] is folios[0]


class TestRemoval:
    def test_removal_unlinks(self):
        cg, policy, mapping = setup_policy()
        folio = insert(policy, mapping, cg, 0)
        policy.folio_removed(folio)
        assert policy.nr_tracked() == 0
        assert folio.lru_node is None

    def test_removal_of_active_folio(self):
        cg, policy, mapping = setup_policy()
        folio = insert(policy, mapping, cg, 0, refault=True)
        policy.folio_removed(folio)
        assert policy.active.empty

    def test_access_after_removal_is_noop(self):
        cg, policy, mapping = setup_policy()
        folio = insert(policy, mapping, cg, 0)
        policy.folio_removed(folio)
        policy.folio_accessed(folio)  # must not raise
        assert policy.nr_tracked() == 0

    def test_eviction_tier_is_zero(self):
        cg, policy, mapping = setup_policy()
        folio = insert(policy, mapping, cg, 0)
        assert policy.eviction_tier(folio) == 0
