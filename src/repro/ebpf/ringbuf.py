"""BPF ring buffer: kernel-to-userspace event channel.

Two call sites in the paper use it:

* the **userspace-dispatch strawman** (Table 1): tracepoint programs
  post one event per page-cache action, and the measured overhead of
  just *notifying* userspace motivates running policies in the kernel;
* **LHD reconfiguration** (§5.2): the hot path posts a "please
  reconfigure" event; a userspace thread wakes and triggers a
  BPF_PROG_TYPE_SYSCALL program.

Producers pay a fixed CPU cost per event (reserve + commit on the
lockless buffer); that cost, multiplied by millions of events, is
Table 1's degradation.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.engine import current_thread


class RingBuffer:
    """Bounded single-producer-per-call ring buffer.

    Parameters
    ----------
    capacity:
        Maximum buffered events; further ``output`` calls drop the event
        and count it (the kernel returns -ENOSPC and the producer simply
        loses the notification).
    produce_cost_us:
        CPU charged to the producing thread per successful event.
    """

    #: Ring buffers are maps (BPF_MAP_TYPE_RINGBUF); the verifier
    #: accepts references to them in programs.
    __bpf_map__ = True

    def __init__(self, capacity: int = 4096,
                 produce_cost_us: float = 0.0, name: str = "rb") -> None:
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self.produce_cost_us = produce_cost_us
        self.name = name
        self._buf: list[Any] = []
        self.produced = 0
        self.dropped = 0
        self.consumed = 0

    def __len__(self) -> int:
        return len(self._buf)

    def output(self, record: Any) -> bool:
        """Post one event; returns False if the buffer was full."""
        thread = current_thread()
        if thread is not None and self.produce_cost_us:
            thread.advance(self.produce_cost_us)
        if len(self._buf) >= self.capacity:
            self.dropped += 1
            return False
        self._buf.append(record)
        self.produced += 1
        return True

    def drain(self, max_events: Optional[int] = None) -> list:
        """Userspace consumption: pop up to ``max_events`` records."""
        if max_events is None or max_events >= len(self._buf):
            out, self._buf = self._buf, []
        else:
            out = self._buf[:max_events]
            del self._buf[:max_events]
        self.consumed += len(out)
        return out
