"""MRU eviction policy (§5.4).

Most-recently-used: evict the folios touched last.  Pathological for
skewed point lookups but ideal for repeated large scans (the file
search workload of Figure 9), where LRU-family policies evict exactly
the pages that will be needed again soonest.

Per the paper, folios are added/moved to the **head** on insertion and
access, and eviction iterates from the head — but skips a small fixed
number of folios first, because the very newest folios "may still be in
use by the kernel to service the I/O request" and proposing them would
only trigger eviction refusals and the fallback path.
"""

from __future__ import annotations

from repro.cache_ext.kfuncs import ITER_EVICT, ITER_SKIP, MODE_SIMPLE, \
    list_add, list_create, list_iterate, list_move
from repro.cache_ext.ops import CacheExtOps
from repro.ebpf.maps import ArrayMap
from repro.ebpf.runtime import bpf_program

#: Folios to skip from the head before proposing candidates.
DEFAULT_SKIP = 8


def make_mru_policy(skip: int = DEFAULT_SKIP) -> CacheExtOps:
    """Build an MRU policy instance."""
    bss = ArrayMap(1, name="mru_bss")
    skip_n = skip

    @bpf_program
    def mru_policy_init(memcg):
        mru_list = list_create(memcg)
        if mru_list < 0:
            return mru_list
        bss.update(0, mru_list)
        return 0

    @bpf_program
    def mru_folio_added(folio):
        list_add(bss.lookup(0), folio, False)  # head

    @bpf_program
    def mru_folio_accessed(folio):
        list_move(bss.lookup(0), folio, False)  # move to head

    @bpf_program
    def mru_select(i, folio):
        if i < skip_n:
            return ITER_SKIP  # may still be in use by the kernel
        return ITER_EVICT

    @bpf_program
    def mru_evict_folios(ctx, memcg):
        list_iterate(memcg, bss.lookup(0), mru_select, ctx, MODE_SIMPLE)

    return CacheExtOps(
        name="mru",
        policy_init=mru_policy_init,
        evict_folios=mru_evict_folios,
        folio_added=mru_folio_added,
        folio_accessed=mru_folio_accessed,
    )
